#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "util/strings.h"

namespace wtp::obs {
namespace {

constexpr double kNanosPerMicro = 1000.0;

/// Round-robin stripe assignment: each thread grabs the next slot on first
/// use and keeps it for life, so a thread always hits the same stripe.
std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % Timer::kStripes;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

void Timer::record_ns(double ns) noexcept {
  Stripe& stripe = stripes_[thread_stripe()];
  std::lock_guard lock(stripe.mutex);
  stripe.histogram.record(ns);
}

util::LatencyHistogram Timer::collect(bool reset) const {
  util::LatencyHistogram merged;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard lock(stripe.mutex);
    merged.merge(stripe.histogram);
    if (reset) stripe.histogram.reset();
  }
  return merged;
}

std::string canonical_key(std::string_view name,
                          std::span<const Label> labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ',';
      key += labels[i].key;
      key += '=';
      key += labels[i].value;
    }
    key += '}';
  }
  return key;
}

template <typename Metric>
Metric& Registry::resolve(
    std::unordered_map<std::string, Series<Metric>> Shard::* map,
    std::string_view name, std::span<const Label> labels) {
  std::string key = canonical_key(name, labels);
  Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
  std::lock_guard lock(shard.mutex);
  auto& series_map = shard.*map;
  auto it = series_map.find(key);
  if (it == series_map.end()) {
    Series<Metric> series;
    series.name.assign(name);
    series.labels.assign(labels.begin(), labels.end());
    series.metric = std::make_unique<Metric>();
    it = series_map.emplace(std::move(key), std::move(series)).first;
  }
  return *it->second.metric;
}

Counter& Registry::counter(std::string_view name,
                           std::span<const Label> labels) {
  return resolve(&Shard::counters, name, labels);
}

Gauge& Registry::gauge(std::string_view name, std::span<const Label> labels) {
  return resolve(&Shard::gauges, name, labels);
}

Timer& Registry::timer(std::string_view name, std::span<const Label> labels) {
  return resolve(&Shard::timers, name, labels);
}

Snapshot Registry::snapshot(bool reset) const {
  Snapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, series] : shard.counters) {
      out.counters.push_back(
          {series.name, series.labels, series.metric->collect(reset)});
    }
    for (const auto& [key, series] : shard.gauges) {
      out.gauges.push_back({series.name, series.labels,
                            series.metric->value()});
    }
    for (const auto& [key, series] : shard.timers) {
      out.timers.push_back(
          {series.name, series.labels, series.metric->collect(reset)});
    }
  }
  auto by_key = [](const auto& a, const auto& b) {
    return canonical_key(a.name, a.labels) < canonical_key(b.name, b.labels);
  };
  std::sort(out.counters.begin(), out.counters.end(), by_key);
  std::sort(out.gauges.begin(), out.gauges.end(), by_key);
  std::sort(out.timers.begin(), out.timers.end(), by_key);
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

void append_labels_json(std::string& out, const std::vector<Label>& labels) {
  out += "\"labels\":{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += util::json_escape(labels[i].key);
    out += "\":\"";
    out += util::json_escape(labels[i].value);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"type\":\"metrics_snapshot\",\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& entry = snapshot.counters[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += util::json_escape(entry.name);
    out += "\",";
    append_labels_json(out, entry.labels);
    out += ",\"value\":";
    out += std::to_string(entry.value);
    out += '}';
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& entry = snapshot.gauges[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += util::json_escape(entry.name);
    out += "\",";
    append_labels_json(out, entry.labels);
    out += ",\"value\":";
    out += format_double(entry.value);
    out += '}';
  }
  out += "],\"timers\":[";
  for (std::size_t i = 0; i < snapshot.timers.size(); ++i) {
    const auto& entry = snapshot.timers[i];
    const util::LatencyHistogram& h = entry.histogram;
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += util::json_escape(entry.name);
    out += "\",";
    append_labels_json(out, entry.labels);
    out += ",\"count\":";
    out += std::to_string(h.count());
    out += ",\"mean_us\":";
    out += format_double(h.mean() / kNanosPerMicro);
    out += ",\"min_us\":";
    out += format_double(h.count() == 0 ? 0.0 : h.min() / kNanosPerMicro);
    out += ",\"p50_us\":";
    out += format_double(h.quantile(0.50) / kNanosPerMicro);
    out += ",\"p90_us\":";
    out += format_double(h.quantile(0.90) / kNanosPerMicro);
    out += ",\"p99_us\":";
    out += format_double(h.quantile(0.99) / kNanosPerMicro);
    out += ",\"max_us\":";
    out += format_double(h.count() == 0 ? 0.0 : h.max() / kNanosPerMicro);
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out = "wtp_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Label values escape backslash, double-quote, and newline per the
/// exposition-format spec.
std::string prometheus_label_value(std::string_view value) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_labels(const std::vector<Label>& labels,
                              std::string_view extra_key = {},
                              std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name(label.key).substr(4);  // no wtp_ prefix on labels
    out += "=\"";
    out += prometheus_label_value(label.value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  constexpr double kNanosPerSecond = 1e9;
  std::string out;
  for (const auto& entry : snapshot.counters) {
    out += prometheus_name(entry.name);
    out += "_total";
    out += prometheus_labels(entry.labels);
    out += ' ';
    out += std::to_string(entry.value);
    out += '\n';
  }
  for (const auto& entry : snapshot.gauges) {
    out += prometheus_name(entry.name);
    out += prometheus_labels(entry.labels);
    out += ' ';
    out += format_double(entry.value);
    out += '\n';
  }
  for (const auto& entry : snapshot.timers) {
    const util::LatencyHistogram& h = entry.histogram;
    const std::string base = prometheus_name(entry.name) + "_seconds";
    for (double q : {0.5, 0.9, 0.99}) {
      out += base;
      out += prometheus_labels(entry.labels, "quantile", format_double(q));
      out += ' ';
      out += format_double(h.quantile(q) / kNanosPerSecond);
      out += '\n';
    }
    out += base;
    out += "_sum";
    out += prometheus_labels(entry.labels);
    out += ' ';
    out += format_double(h.mean() * static_cast<double>(h.count()) /
                         kNanosPerSecond);
    out += '\n';
    out += base;
    out += "_count";
    out += prometheus_labels(entry.labels);
    out += ' ';
    out += std::to_string(h.count());
    out += '\n';
  }
  return out;
}

}  // namespace wtp::obs
