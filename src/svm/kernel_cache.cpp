#include "svm/kernel_cache.h"

#include "svm/kernel.h"

#include <algorithm>
#include <stdexcept>

namespace wtp::svm {

KernelCache::KernelCache(std::size_t rows, std::size_t budget_bytes)
    : rows_{rows}, slots_(rows) {
  if (rows == 0) throw std::invalid_argument{"KernelCache: rows must be > 0"};
  const std::size_t row_bytes = rows * sizeof(float);
  max_cached_rows_ = std::max<std::size_t>(2, budget_bytes / std::max<std::size_t>(1, row_bytes));
  max_cached_rows_ = std::min(max_cached_rows_, rows);
}

std::span<const float> KernelCache::get(
    std::size_t i,
    const std::function<void(std::size_t, std::span<float>)>& fill) {
  if (i >= rows_) throw std::out_of_range{"KernelCache::get: row out of range"};
  Slot& slot = slots_[i];
  if (slot.cached) {
    ++hits_;
    // splice moves the node in place: no allocation on the hit path.
    lru_.splice(lru_.begin(), lru_, slot.lru_pos);
    slot.lru_pos = lru_.begin();
    return slot.data;
  }
  ++misses_;
  if (cached_count_ >= max_cached_rows_) evict_one();
  slot.data.resize(rows_);
  fill(i, slot.data);
  slot.cached = true;
  ++cached_count_;
  lru_.push_front(i);
  slot.lru_pos = lru_.begin();
  return slot.data;
}

void KernelCache::evict_one() {
  if (lru_.empty()) return;
  const std::size_t victim = lru_.back();
  lru_.pop_back();
  Slot& slot = slots_[victim];
  slot.cached = false;
  slot.data.clear();
  slot.data.shrink_to_fit();
  --cached_count_;
}

GramCache::GramCache(const util::FeatureMatrix& data, std::size_t budget_bytes)
    : data_{&data}, slots_(data.rows()) {
  if (data.empty()) throw std::invalid_argument{"GramCache: empty matrix"};
  const std::size_t row_bytes = data.rows() * sizeof(double);
  max_cached_rows_ = std::max<std::size_t>(
      2, budget_bytes / std::max<std::size_t>(1, row_bytes));
  max_cached_rows_ = std::min(max_cached_rows_, data.rows());
}

void GramCache::row(std::size_t i, std::span<double> out) {
  if (i >= slots_.size()) {
    throw std::out_of_range{"GramCache::row: row out of range"};
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  Slot& slot = slots_[i];
  if (slot.cached) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, slot.lru_pos);
    slot.lru_pos = lru_.begin();
    std::copy(slot.data.begin(), slot.data.end(), out.begin());
    return;
  }
  ++misses_;
  if (cached_count_ >= max_cached_rows_) evict_one();
  slot.data.resize(data_->rows());
  dot_rows(*data_, i, slot.data);
  slot.cached = true;
  ++cached_count_;
  lru_.push_front(i);
  slot.lru_pos = lru_.begin();
  std::copy(slot.data.begin(), slot.data.end(), out.begin());
}

std::size_t GramCache::hits() const noexcept {
  const std::lock_guard<std::mutex> lock{mutex_};
  return hits_;
}

std::size_t GramCache::misses() const noexcept {
  const std::lock_guard<std::mutex> lock{mutex_};
  return misses_;
}

void GramCache::evict_one() {
  if (lru_.empty()) return;
  const std::size_t victim = lru_.back();
  lru_.pop_back();
  Slot& slot = slots_[victim];
  slot.cached = false;
  slot.data.clear();
  slot.data.shrink_to_fit();
  --cached_count_;
}

}  // namespace wtp::svm
