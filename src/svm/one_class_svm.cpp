#include "svm/one_class_svm.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "svm/smo_solver.h"

namespace wtp::svm {

double compute_rho(std::span<const double> alpha, std::span<const double> gradient,
                   double upper_bound) {
  const double bound_eps = upper_bound * 1e-12;
  double free_sum = 0.0;
  std::size_t free_count = 0;
  // KKT: alpha_i = 0 -> G_i >= rho; alpha_i = U -> G_i <= rho; free -> G_i = rho.
  double upper_limit = std::numeric_limits<double>::infinity();   // min G over alpha=0
  double lower_limit = -std::numeric_limits<double>::infinity();  // max G over alpha=U
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    if (alpha[i] <= bound_eps) {
      upper_limit = std::min(upper_limit, gradient[i]);
    } else if (alpha[i] >= upper_bound - bound_eps) {
      lower_limit = std::max(lower_limit, gradient[i]);
    } else {
      free_sum += gradient[i];
      ++free_count;
    }
  }
  if (free_count > 0) return free_sum / static_cast<double>(free_count);
  if (std::isinf(upper_limit) && std::isinf(lower_limit)) return 0.0;
  if (std::isinf(upper_limit)) return lower_limit;
  if (std::isinf(lower_limit)) return upper_limit;
  return 0.5 * (upper_limit + lower_limit);
}

OneClassSvmModel OneClassSvmModel::train(std::span<const util::SparseVector> data,
                                         const OneClassSvmConfig& config,
                                         std::size_t dimension) {
  if (data.empty()) {
    throw std::invalid_argument{"OneClassSvmModel::train: empty training set"};
  }
  if (config.nu <= 0.0 || config.nu > 1.0) {
    throw std::invalid_argument{"OneClassSvmModel::train: nu must be in (0, 1]"};
  }
  KernelParams kernel = config.kernel;
  if (kernel.gamma <= 0.0) {
    kernel.gamma = 1.0 / static_cast<double>(std::max<std::size_t>(1, dimension));
  }

  const std::size_t l = data.size();
  QMatrix q{data, kernel, /*scale=*/1.0, config.cache_bytes};
  const std::vector<double> p(l, 0.0);
  SolverConfig solver_config;
  solver_config.eps = config.eps;
  const SolverResult solved =
      solve_smo(q, p, /*upper_bound=*/1.0, /*alpha_sum=*/config.nu * static_cast<double>(l),
                solver_config);

  OneClassSvmModel model;
  model.kernel_ = kernel;
  model.rho_ = compute_rho(solved.alpha, solved.gradient, 1.0);
  std::size_t bounded = 0;
  for (std::size_t i = 0; i < l; ++i) {
    if (solved.alpha[i] > 1e-12) {
      model.support_vectors_.push_back(data[i]);
      model.coefficients_.push_back(solved.alpha[i]);
      if (solved.alpha[i] >= 1.0 - 1e-12) ++bounded;
    }
  }
  model.bounded_fraction_ = static_cast<double>(bounded) / static_cast<double>(l);
  model.precompute_norms();
  return model;
}

void OneClassSvmModel::precompute_norms() {
  sv_sqnorms_.resize(support_vectors_.size());
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    sv_sqnorms_[i] = support_vectors_[i].squared_norm();
  }
}

OneClassSvmModel OneClassSvmModel::from_parts(
    KernelParams kernel, std::vector<util::SparseVector> support_vectors,
    std::vector<double> coefficients, double rho) {
  if (support_vectors.size() != coefficients.size()) {
    throw std::invalid_argument{"OneClassSvmModel::from_parts: SV/coefficient size mismatch"};
  }
  OneClassSvmModel model;
  model.kernel_ = kernel;
  model.support_vectors_ = std::move(support_vectors);
  model.coefficients_ = std::move(coefficients);
  model.rho_ = rho;
  model.precompute_norms();
  return model;
}

double OneClassSvmModel::decision_value(const util::SparseVector& x) const {
  double sum = 0.0;
  const double x_sqnorm = x.squared_norm();
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    sum += coefficients_[i] * kernel_eval(kernel_, support_vectors_[i], x,
                                          sv_sqnorms_[i], x_sqnorm);
  }
  return sum - rho_;
}

}  // namespace wtp::svm
