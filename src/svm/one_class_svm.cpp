#include "svm/one_class_svm.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/trace.h"
#include "svm/smo_solver.h"

namespace wtp::svm {

double compute_rho(std::span<const double> alpha, std::span<const double> gradient,
                   double upper_bound) {
  const double bound_eps = upper_bound * 1e-12;
  double free_sum = 0.0;
  std::size_t free_count = 0;
  // KKT: alpha_i = 0 -> G_i >= rho; alpha_i = U -> G_i <= rho; free -> G_i = rho.
  double upper_limit = std::numeric_limits<double>::infinity();   // min G over alpha=0
  double lower_limit = -std::numeric_limits<double>::infinity();  // max G over alpha=U
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    if (alpha[i] <= bound_eps) {
      upper_limit = std::min(upper_limit, gradient[i]);
    } else if (alpha[i] >= upper_bound - bound_eps) {
      lower_limit = std::max(lower_limit, gradient[i]);
    } else {
      free_sum += gradient[i];
      ++free_count;
    }
  }
  if (free_count > 0) return free_sum / static_cast<double>(free_count);
  if (std::isinf(upper_limit) && std::isinf(lower_limit)) return 0.0;
  if (std::isinf(upper_limit)) return lower_limit;
  if (std::isinf(lower_limit)) return upper_limit;
  return 0.5 * (upper_limit + lower_limit);
}

OneClassSvmModel OneClassSvmModel::from_solution(const util::FeatureMatrix& data,
                                                 const KernelParams& kernel,
                                                 const SolverResult& solved) {
  const std::size_t l = data.rows();
  OneClassSvmModel model;
  model.kernel_ = kernel;
  model.rho_ = compute_rho(solved.alpha, solved.gradient, 1.0);
  model.solver_stats_ = solved.stats;
  util::FeatureMatrixBuilder svs;
  std::size_t bounded = 0;
  for (std::size_t i = 0; i < l; ++i) {
    if (solved.alpha[i] > 1e-12) {
      svs.add_row(data, i);
      model.coefficients_.push_back(solved.alpha[i]);
      if (solved.alpha[i] >= 1.0 - 1e-12) ++bounded;
    }
  }
  model.support_vectors_ = svs.build(data.cols());
  // Inherit the training matrix's bitset layout (schema-derived when the
  // caller used ensure_bitset) so decision-time query encodings can be
  // borrowed zero-copy across same-layout matrices.
  if (kernel_dispatch() != nullptr) {
    if (const auto* bitset = data.bitset()) {
      model.support_vectors_.ensure_bitset(bitset->view().numeric_cols);
    }
  }
  model.bounded_fraction_ = static_cast<double>(bounded) / static_cast<double>(l);
  return model;
}

std::vector<OneClassSvmModel> OneClassSvmModel::fit_path(
    const util::FeatureMatrix& data, const OneClassSvmConfig& config,
    std::span<const double> nus, std::size_t dimension, PathStats* stats) {
  if (data.empty()) {
    throw std::invalid_argument{"OneClassSvmModel::fit_path: empty training set"};
  }
  for (const double nu : nus) {
    if (nu <= 0.0 || nu > 1.0) {
      throw std::invalid_argument{"OneClassSvmModel::fit_path: nu must be in (0, 1]"};
    }
  }
  KernelParams kernel = config.kernel;
  if (kernel.gamma <= 0.0) {
    kernel.gamma = 1.0 / static_cast<double>(std::max<std::size_t>(1, dimension));
  }

  const obs::TraceSpan path_span{"svm.fit_path", "svm",
                                 static_cast<std::uint64_t>(nus.size())};
  obs::Registry::global().counter("solver.path_columns").add(1);

  const std::size_t l = data.rows();
  QMatrix q{data, kernel, /*scale=*/1.0, config.cache_bytes, config.gram_cache};
  const std::vector<double> p(l, 0.0);
  SolverConfig solver_config;
  solver_config.eps = config.eps;
  solver_config.shrinking = config.shrinking;
  solver_config.shrink_interval = config.shrink_interval;

  std::vector<OneClassSvmModel> models;
  models.reserve(nus.size());
  SolverResult previous;
  for (const double nu : nus) {
    const double delta = nu * static_cast<double>(l);
    // Subsequent cells seed from the previous solution (alpha, gradient and
    // G_bar), so the solver pays only for what the projection changed.
    SolverResult solved =
        previous.alpha.empty()
            ? solve_smo(q, p, /*upper_bound=*/1.0, delta, solver_config)
            : solve_smo(q, p, /*upper_bound=*/1.0, delta, solver_config,
                        WarmSeed{previous.alpha, previous.gradient,
                                 previous.g_bar, /*upper_bound=*/1.0});
    if (stats != nullptr) stats->cells.push_back(solved.stats);
    models.push_back(from_solution(data, kernel, solved));
    previous = std::move(solved);
  }
  if (stats != nullptr) {
    stats->cache_hits = q.cache_hits();
    stats->cache_misses = q.cache_misses();
  }
  return models;
}

OneClassSvmModel OneClassSvmModel::train(const util::FeatureMatrix& data,
                                         const OneClassSvmConfig& config,
                                         std::size_t dimension) {
  if (config.nu <= 0.0 || config.nu > 1.0) {
    throw std::invalid_argument{"OneClassSvmModel::train: nu must be in (0, 1]"};
  }
  if (data.empty()) {
    throw std::invalid_argument{"OneClassSvmModel::train: empty training set"};
  }
  const double nu[] = {config.nu};
  return std::move(fit_path(data, config, nu, dimension).front());
}

OneClassSvmModel OneClassSvmModel::train(std::span<const util::SparseVector> data,
                                         const OneClassSvmConfig& config,
                                         std::size_t dimension) {
  return train(util::FeatureMatrix::from_rows(data), config, dimension);
}

OneClassSvmModel OneClassSvmModel::from_parts(KernelParams kernel,
                                              util::FeatureMatrix support_vectors,
                                              std::vector<double> coefficients,
                                              double rho) {
  if (support_vectors.rows() != coefficients.size()) {
    throw std::invalid_argument{"OneClassSvmModel::from_parts: SV/coefficient size mismatch"};
  }
  OneClassSvmModel model;
  model.kernel_ = kernel;
  model.support_vectors_ = std::move(support_vectors);
  model.coefficients_ = std::move(coefficients);
  model.rho_ = rho;
  return model;
}

OneClassSvmModel OneClassSvmModel::from_parts(
    KernelParams kernel, std::vector<util::SparseVector> support_vectors,
    std::vector<double> coefficients, double rho) {
  return from_parts(kernel, util::FeatureMatrix::from_rows(support_vectors),
                    std::move(coefficients), rho);
}

double OneClassSvmModel::decision_value(const util::SparseVector& x) const {
  return decision_value(x, x.squared_norm());
}

double OneClassSvmModel::decision_value(const util::SparseVector& x,
                                        double x_sqnorm) const {
  const auto k = kernel_row_scratch(support_vectors_.rows());
  kernel_row(kernel_, support_vectors_, x, x_sqnorm, k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) sum += coefficients_[i] * k[i];
  return sum - rho_;
}

void OneClassSvmModel::decision_values(const util::FeatureMatrix& queries,
                                       std::span<double> out) const {
  // Batched through kernel_block in bounded query tiles; the coefficient
  // reduction per query is unchanged, so results stay bit-identical to the
  // per-query kernel_row path.
  const std::size_t n = support_vectors_.rows();
  const std::size_t nq = queries.rows();
  constexpr std::size_t kQueryTile = 64;
  thread_local std::vector<double> block;
  if (block.size() < std::min(kQueryTile, nq) * n) {
    block.resize(std::min(kQueryTile, nq) * n);
  }
  for (std::size_t q0 = 0; q0 < nq; q0 += kQueryTile) {
    const std::size_t tile = std::min(kQueryTile, nq - q0);
    const std::span<double> k{block.data(), tile * n};
    kernel_block(kernel_, support_vectors_, queries, q0, tile, k);
    for (std::size_t t = 0; t < tile; ++t) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum += coefficients_[i] * k[t * n + i];
      out[q0 + t] = sum - rho_;
    }
  }
}

}  // namespace wtp::svm
