// The ONE scalar definition of the per-element kernel arithmetic
// (DESIGN §14).  kernel_eval, kernel_self, kernel_transform's scalar
// backend, and the SIMD transform tails all stamp their per-element bodies
// from these inlines, so exact-tier bit-identity across entry points is by
// construction: there is no second copy of the expressions to drift.
//
// Every helper preserves the historical expression ORDER of kernel_eval
// (svm/kernel.cpp), which is the repo-wide oracle:
//
//   polynomial  powi(gamma * dot + coef0, degree)
//   rbf         exp(-gamma * max(sq_dist, 0)),
//               sq_dist = (x_sqnorm + y_sqnorm) - (2.0 * dot)
//   sigmoid     tanh(gamma * dot + coef0)
//
// The SIMD stamps in svm/transform_backends.cpp mirror these expressions
// with fp-contract pinned off, so a vector lane performs the same two-round
// mul+add the baseline-ISA scalar build does.
#pragma once

namespace wtp::svm::detail {

#define WTP_POWI_FN powi
#define WTP_POWI_VEC double
#define WTP_POWI_ONE 1.0
#define WTP_POWI_MUL(a, b) ((a) * (b))
#define WTP_POWI_ATTR
#include "svm/powi_body.inc"
#undef WTP_POWI_FN
#undef WTP_POWI_VEC
#undef WTP_POWI_ONE
#undef WTP_POWI_MUL
#undef WTP_POWI_ATTR

/// gamma * dot + coef0 — the polynomial/sigmoid pre-scale.
inline double affine_arg(double gamma, double coef0, double dot) {
  return gamma * dot + coef0;
}

/// -gamma * max(sq_dist, 0) with sq_dist = x² + y² - 2·dot — the RBF
/// exponent, clamp included (catastrophic cancellation near x == y can make
/// sq_dist a tiny negative; NaN also clamps to 0, matching the ternary).
inline double rbf_exp_arg(double gamma, double x_sqnorm, double y_sqnorm,
                          double dot) {
  const double sq_dist = x_sqnorm + y_sqnorm - 2.0 * dot;
  return -gamma * (sq_dist > 0.0 ? sq_dist : 0.0);
}

/// The full polynomial element: powi(gamma * dot + coef0, degree).
inline double poly_element(double gamma, double coef0, int degree,
                           double dot) {
  return powi(affine_arg(gamma, coef0, dot), degree);
}

}  // namespace wtp::svm::detail
