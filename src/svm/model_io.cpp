#include "svm/model_io.h"

#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace wtp::svm {

namespace {

constexpr const char* kMagic = "wtp_svm_model v1";

void write_kernel(std::ostream& out, const KernelParams& kernel) {
  // Only the four math fields are serialized.  KernelParams::transform is
  // an execution hint (which precision tier scores the model), not part of
  // the kernel's identity — a loaded model always starts at kDefault and
  // follows the loading process's transform mode.
  out << "kernel " << to_string(kernel.type) << '\n';
  // max_digits10 round-trips doubles exactly through text.
  out.precision(17);
  out << "gamma " << kernel.gamma << '\n';
  out << "coef0 " << kernel.coef0 << '\n';
  out << "degree " << kernel.degree << '\n';
}

void write_svs(std::ostream& out, const util::FeatureMatrix& svs,
               const std::vector<double>& coefficients) {
  out << "nr_sv " << svs.rows() << '\n';
  out << "SV\n";
  for (std::size_t i = 0; i < svs.rows(); ++i) {
    out << coefficients[i];
    const auto indices = svs.row_indices(i);
    const auto values = svs.row_values(i);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      out << ' ' << indices[k] << ':' << values[k];
    }
    out << '\n';
  }
}

struct Header {
  std::string type;
  KernelParams kernel;
  std::map<std::string, double> scalars;
  std::size_t nr_sv = 0;
};

Header read_header(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || util::trim(line) != kMagic) {
    throw std::runtime_error{"load_model: missing magic line '" + std::string{kMagic} + "'"};
  }
  Header header;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed == "SV") return header;
    std::istringstream fields{std::string{trimmed}};
    std::string key;
    fields >> key;
    if (key == "type") {
      fields >> header.type;
    } else if (key == "kernel") {
      std::string name;
      fields >> name;
      header.kernel.type = parse_kernel_type(name);
    } else if (key == "gamma") {
      fields >> header.kernel.gamma;
    } else if (key == "coef0") {
      fields >> header.kernel.coef0;
    } else if (key == "degree") {
      fields >> header.kernel.degree;
    } else if (key == "nr_sv") {
      fields >> header.nr_sv;
    } else {
      double value = 0.0;
      fields >> value;
      header.scalars[key] = value;
    }
    if (fields.fail()) {
      throw std::runtime_error{"load_model: malformed header line '" + line + "'"};
    }
  }
  throw std::runtime_error{"load_model: missing SV section"};
}

void read_svs(std::istream& in, std::size_t count,
              std::vector<util::SparseVector>& svs, std::vector<double>& coefficients) {
  std::string line;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error{"load_model: expected " + std::to_string(count) +
                               " SV lines, got " + std::to_string(i)};
    }
    std::istringstream fields{line};
    double alpha = 0.0;
    if (!(fields >> alpha)) {
      throw std::runtime_error{"load_model: malformed SV line '" + line + "'"};
    }
    std::vector<util::SparseVector::Entry> entries;
    std::string pair;
    while (fields >> pair) {
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error{"load_model: malformed index:value pair '" + pair + "'"};
      }
      entries.push_back({std::stoul(pair.substr(0, colon)),
                         std::stod(pair.substr(colon + 1))});
    }
    coefficients.push_back(alpha);
    svs.emplace_back(std::move(entries));
  }
}

double require_scalar(const Header& header, const std::string& key) {
  const auto it = header.scalars.find(key);
  if (it == header.scalars.end()) {
    throw std::runtime_error{"load_model: missing '" + key + "' field"};
  }
  return it->second;
}

}  // namespace

void save_model(std::ostream& out, const OneClassSvmModel& model) {
  out << kMagic << '\n';
  out << "type one_class_svm\n";
  write_kernel(out, model.kernel());
  out.precision(17);
  out << "rho " << model.rho() << '\n';
  write_svs(out, model.support_vectors(), model.coefficients());
}

void save_model(std::ostream& out, const SvddModel& model) {
  out << kMagic << '\n';
  out << "type svdd\n";
  write_kernel(out, model.kernel());
  out.precision(17);
  out << "r_squared " << model.r_squared() << '\n';
  out << "alpha_k_alpha " << model.alpha_k_alpha() << '\n';
  write_svs(out, model.support_vectors(), model.coefficients());
}

void save_model_file(const std::string& path, const AnySvmModel& model) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"save_model_file: cannot open '" + path + "'"};
  std::visit([&out](const auto& m) { save_model(out, m); }, model);
}

AnySvmModel load_model(std::istream& in) {
  const Header header = read_header(in);
  std::vector<util::SparseVector> svs;
  std::vector<double> coefficients;
  read_svs(in, header.nr_sv, svs, coefficients);
  if (header.type == "one_class_svm") {
    return OneClassSvmModel::from_parts(header.kernel, std::move(svs),
                                        std::move(coefficients),
                                        require_scalar(header, "rho"));
  }
  if (header.type == "svdd") {
    return SvddModel::from_parts(header.kernel, std::move(svs),
                                 std::move(coefficients),
                                 require_scalar(header, "r_squared"),
                                 require_scalar(header, "alpha_k_alpha"));
  }
  throw std::runtime_error{"load_model: unknown model type '" + header.type + "'"};
}

AnySvmModel load_model_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_model_file: cannot open '" + path + "'"};
  return load_model(in);
}

OneClassSvmModel load_one_class_model(std::istream& in) {
  AnySvmModel model = load_model(in);
  if (auto* typed = std::get_if<OneClassSvmModel>(&model)) return std::move(*typed);
  throw std::runtime_error{"load_one_class_model: stored model is not one_class_svm"};
}

SvddModel load_svdd_model(std::istream& in) {
  AnySvmModel model = load_model(in);
  if (auto* typed = std::get_if<SvddModel>(&model)) return std::move(*typed);
  throw std::runtime_error{"load_svdd_model: stored model is not svdd"};
}

// ---------------------------------------------------------------------------
// Binary blob plane.

namespace {

constexpr char kBlobMagic[8] = {'W', 'T', 'P', 'S', 'V', 'M', 'B', '1'};
constexpr std::uint32_t kBlobVersion = 1;
/// Version 2 appends the bitset companion of the SV block (DESIGN §11)
/// after the v1 sections, so mmap'd stores score through AND+popcount
/// zero-copy.  Models whose SV blocks are not bitset-representable are
/// still written as v1; readers accept both.
constexpr std::uint32_t kBlobVersionBitset = 2;
constexpr std::uint32_t kEndianGuard = 0x01020304u;

// CsrView row_offsets are std::size_t spans; the on-disk format stores u64.
// Viewing the stored array in place requires the two to be the same type.
static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
              "blob format requires 64-bit size_t");

struct BlobHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint32_t model_type;
  std::uint32_t kernel_type;
  double gamma;
  double coef0;
  std::int32_t degree;
  std::uint32_t value_format;
  double scalar0;
  double scalar1;
  std::uint64_t sv_count;
  std::uint64_t nnz;
  std::uint64_t cols;
  std::uint64_t blob_size;
};
static_assert(sizeof(BlobHeader) == 96, "blob header layout drifted");
static_assert(offsetof(BlobHeader, gamma) == 24);
static_assert(offsetof(BlobHeader, scalar0) == 48);
static_assert(offsetof(BlobHeader, sv_count) == 64);
static_assert(offsetof(BlobHeader, blob_size) == 88);

constexpr std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Section offsets within one blob (relative to the blob start).  The
/// bitset sections exist only in v2 blobs (words_per_row > 0 there).
struct BlobLayout {
  std::size_t row_offsets = 0;
  std::size_t indices = 0;
  std::size_t values = 0;
  std::size_t sq_norms = 0;
  std::size_t coefficients = 0;
  std::size_t bitset_header = 0;  ///< u64 words_per_row, u64 numeric_count
  std::size_t numeric_cols = 0;   ///< u32[numeric_count], padded to 8
  std::size_t words = 0;          ///< u64[sv_count * words_per_row]
  std::size_t numeric_values = 0; ///< f64[sv_count * numeric_count]
  std::size_t total = 0;
};

BlobLayout blob_layout(std::uint64_t sv_count, std::uint64_t nnz,
                       std::uint64_t words_per_row = 0,
                       std::uint64_t numeric_count = 0,
                       bool has_bitset = false) {
  BlobLayout l;
  l.row_offsets = sizeof(BlobHeader);
  l.indices = l.row_offsets + (sv_count + 1) * sizeof(std::uint64_t);
  l.values = align8(l.indices + nnz * sizeof(std::uint32_t));
  l.sq_norms = l.values + nnz * sizeof(double);
  l.coefficients = l.sq_norms + sv_count * sizeof(double);
  l.total = l.coefficients + sv_count * sizeof(double);
  if (has_bitset) {
    l.bitset_header = l.total;
    l.numeric_cols = l.bitset_header + 2 * sizeof(std::uint64_t);
    l.words = align8(l.numeric_cols + numeric_count * sizeof(std::uint32_t));
    l.numeric_values = l.words + sv_count * words_per_row * sizeof(std::uint64_t);
    l.total = l.numeric_values + sv_count * numeric_count * sizeof(double);
  }
  return l;
}

void append_bytes(std::vector<std::byte>& out, const void* data, std::size_t size) {
  if (size == 0) return;
  const auto* bytes = static_cast<const std::byte*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

std::size_t append_blob_impl(std::vector<std::byte>& out, std::uint32_t model_type,
                             const KernelParams& kernel, double scalar0,
                             double scalar1, const util::FeatureMatrix& svs,
                             std::span<const double> coefficients) {
  while (out.size() % 8 != 0) out.push_back(std::byte{0});
  const std::size_t start = out.size();
  const auto view = svs.view();
  // v2 when the SV block carries a bitset companion (skipped entirely when
  // the plane is disabled via WTP_KERNEL_BACKEND=csr).
  const util::BitsetStorage* bitset =
      kernel_dispatch() != nullptr ? svs.bitset() : nullptr;
  const util::BitsetView bits =
      bitset != nullptr ? bitset->view() : util::BitsetView{};
  const BlobLayout layout =
      blob_layout(view.rows(), view.nnz(), bits.words_per_row,
                  bits.numeric_cols.size(), bitset != nullptr);

  BlobHeader header{};
  std::memcpy(header.magic, kBlobMagic, sizeof(kBlobMagic));
  header.version = bitset != nullptr ? kBlobVersionBitset : kBlobVersion;
  header.endian = kEndianGuard;
  header.model_type = model_type;
  header.kernel_type = static_cast<std::uint32_t>(kernel.type);
  header.gamma = kernel.gamma;
  header.coef0 = kernel.coef0;
  header.degree = kernel.degree;
  header.value_format = 0;
  header.scalar0 = scalar0;
  header.scalar1 = scalar1;
  header.sv_count = view.rows();
  header.nnz = view.nnz();
  header.cols = view.cols;
  header.blob_size = layout.total;

  out.reserve(start + layout.total);
  append_bytes(out, &header, sizeof(header));
  append_bytes(out, view.row_offsets.data(),
               view.row_offsets.size() * sizeof(std::uint64_t));
  append_bytes(out, view.indices.data(), view.indices.size() * sizeof(std::uint32_t));
  while ((out.size() - start) % 8 != 0) out.push_back(std::byte{0});
  append_bytes(out, view.values.data(), view.values.size() * sizeof(double));
  append_bytes(out, view.sq_norms.data(), view.sq_norms.size() * sizeof(double));
  append_bytes(out, coefficients.data(), coefficients.size() * sizeof(double));
  if (bitset != nullptr) {
    const std::uint64_t words_per_row = bits.words_per_row;
    const std::uint64_t numeric_count = bits.numeric_cols.size();
    append_bytes(out, &words_per_row, sizeof(words_per_row));
    append_bytes(out, &numeric_count, sizeof(numeric_count));
    append_bytes(out, bits.numeric_cols.data(),
                 bits.numeric_cols.size() * sizeof(std::uint32_t));
    while ((out.size() - start) % 8 != 0) out.push_back(std::byte{0});
    append_bytes(out, bits.words.data(), bits.words.size() * sizeof(std::uint64_t));
    append_bytes(out, bits.numeric_values.data(),
                 bits.numeric_values.size() * sizeof(double));
  }
  if (out.size() - start != layout.total) {
    throw std::logic_error{"append_model_blob: layout mismatch"};
  }
  return start;
}

[[noreturn]] void blob_error(const std::string& what) {
  throw std::runtime_error{"view_model_blob: " + what};
}

}  // namespace

std::size_t append_model_blob(std::vector<std::byte>& out,
                              const OneClassSvmModel& model) {
  return append_blob_impl(out, kBlobModelOneClass, model.kernel(), model.rho(),
                          0.0, model.support_vectors(), model.coefficients());
}

std::size_t append_model_blob(std::vector<std::byte>& out, const SvddModel& model) {
  return append_blob_impl(out, kBlobModelSvdd, model.kernel(), model.r_squared(),
                          model.alpha_k_alpha(), model.support_vectors(),
                          model.coefficients());
}

std::size_t append_model_blob(std::vector<std::byte>& out, const AnySvmModel& model) {
  return std::visit([&out](const auto& m) { return append_model_blob(out, m); },
                    model);
}

ModelView view_model_blob(std::span<const std::byte> blob) {
  if (reinterpret_cast<std::uintptr_t>(blob.data()) % 8 != 0) {
    blob_error("blob is not 8-byte aligned");
  }
  if (blob.size() < sizeof(BlobHeader)) {
    blob_error("truncated: " + std::to_string(blob.size()) + " bytes < " +
               std::to_string(sizeof(BlobHeader)) + "-byte header");
  }
  BlobHeader header;
  std::memcpy(&header, blob.data(), sizeof(header));
  if (std::memcmp(header.magic, kBlobMagic, sizeof(kBlobMagic)) != 0) {
    blob_error("bad magic (not a wtp svm blob)");
  }
  if (header.endian != kEndianGuard) {
    if (header.endian == 0x04030201u) {
      blob_error("endianness guard mismatch: blob was written on a "
                 "foreign-endian machine");
    }
    blob_error("corrupt endianness guard");
  }
  if (header.version != kBlobVersion && header.version != kBlobVersionBitset) {
    blob_error("unsupported version " + std::to_string(header.version));
  }
  if (header.model_type != kBlobModelOneClass && header.model_type != kBlobModelSvdd) {
    blob_error("unknown model type " + std::to_string(header.model_type));
  }
  if (header.kernel_type > static_cast<std::uint32_t>(KernelType::kSigmoid)) {
    blob_error("unknown kernel type " + std::to_string(header.kernel_type));
  }
  if (header.value_format != 0) {
    blob_error("unsupported value format " + std::to_string(header.value_format));
  }
  if (header.sv_count == 0) blob_error("zero support vectors");
  const bool has_bitset = header.version == kBlobVersionBitset;
  std::uint64_t words_per_row = 0;
  std::uint64_t numeric_count = 0;
  if (has_bitset) {
    // The bitset subheader sits right after the v1 sections; read it before
    // the full layout can be computed.
    const BlobLayout base = blob_layout(header.sv_count, header.nnz);
    if (blob.size() < base.total + 2 * sizeof(std::uint64_t)) {
      blob_error("truncated bitset subheader");
    }
    std::memcpy(&words_per_row, blob.data() + base.total, sizeof(words_per_row));
    std::memcpy(&numeric_count, blob.data() + base.total + sizeof(std::uint64_t),
                sizeof(numeric_count));
    if (words_per_row != (header.cols + 63) / 64) {
      blob_error("bitset words_per_row " + std::to_string(words_per_row) +
                 " inconsistent with cols " + std::to_string(header.cols));
    }
    if (numeric_count > util::BitsetStorage::kMaxNumericColumns) {
      blob_error("bitset numeric column count " + std::to_string(numeric_count) +
                 " exceeds limit");
    }
  }
  const BlobLayout layout =
      blob_layout(header.sv_count, header.nnz, words_per_row, numeric_count,
                  has_bitset);
  if (header.blob_size != layout.total) {
    blob_error("header blob_size " + std::to_string(header.blob_size) +
               " does not match layout size " + std::to_string(layout.total));
  }
  if (blob.size() < layout.total) {
    blob_error("truncated: " + std::to_string(blob.size()) + " bytes < " +
               std::to_string(layout.total) + " expected");
  }

  const auto* base = blob.data();
  const auto* row_offsets =
      reinterpret_cast<const std::size_t*>(base + layout.row_offsets);
  const auto* indices =
      reinterpret_cast<const std::uint32_t*>(base + layout.indices);
  const auto* values = reinterpret_cast<const double*>(base + layout.values);
  const auto* sq_norms = reinterpret_cast<const double*>(base + layout.sq_norms);
  const auto* coefficients =
      reinterpret_cast<const double*>(base + layout.coefficients);

  if (row_offsets[0] != 0) blob_error("row_offsets[0] != 0");
  for (std::size_t i = 0; i < header.sv_count; ++i) {
    if (row_offsets[i + 1] < row_offsets[i]) {
      blob_error("row_offsets not monotone at row " + std::to_string(i));
    }
  }
  if (row_offsets[header.sv_count] != header.nnz) {
    blob_error("row_offsets end " + std::to_string(row_offsets[header.sv_count]) +
               " != nnz " + std::to_string(header.nnz));
  }
  for (std::size_t k = 0; k < header.nnz; ++k) {
    if (indices[k] >= header.cols) {
      blob_error("column index " + std::to_string(indices[k]) + " >= cols " +
                 std::to_string(header.cols));
    }
  }

  ModelView view;
  view.model_type = header.model_type;
  view.kernel.type = static_cast<KernelType>(header.kernel_type);
  view.kernel.gamma = header.gamma;
  view.kernel.coef0 = header.coef0;
  view.kernel.degree = header.degree;
  view.scalar0 = header.scalar0;
  view.scalar1 = header.scalar1;
  view.support_vectors = util::CsrView{
      header.cols,
      {indices, header.nnz},
      {values, header.nnz},
      {row_offsets, header.sv_count + 1},
      {sq_norms, header.sv_count}};
  view.coefficients = {coefficients, header.sv_count};
  if (has_bitset) {
    const auto* numeric_cols =
        reinterpret_cast<const std::uint32_t*>(base + layout.numeric_cols);
    for (std::size_t k = 0; k < numeric_count; ++k) {
      if (numeric_cols[k] >= header.cols) {
        blob_error("bitset numeric column " + std::to_string(numeric_cols[k]) +
                   " >= cols " + std::to_string(header.cols));
      }
      if (k > 0 && numeric_cols[k] <= numeric_cols[k - 1]) {
        blob_error("bitset numeric columns not strictly ascending");
      }
    }
    view.has_bitset = true;
    view.sv_bitset = util::BitsetView{
        header.cols,
        header.sv_count,
        words_per_row,
        {reinterpret_cast<const std::uint64_t*>(base + layout.words),
         header.sv_count * words_per_row},
        {numeric_cols, numeric_count},
        {reinterpret_cast<const double*>(base + layout.numeric_values),
         header.sv_count * numeric_count}};
  }
  return view;
}

double ModelView::decision_value(std::span<const std::uint32_t> query_indices,
                                 std::span<const double> query_values,
                                 double x_sqnorm) const {
  return decision_value(query_indices, query_values, x_sqnorm, nullptr);
}

double ModelView::decision_value(std::span<const std::uint32_t> query_indices,
                                 std::span<const double> query_values,
                                 double x_sqnorm, EncodedQueryCache* cache) const {
  const auto k = kernel_row_scratch(support_vectors.rows());
  kernel_row(kernel, support_vectors, has_bitset ? &sv_bitset : nullptr,
             query_indices, query_values, x_sqnorm, k, cache);
  double sum = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) sum += coefficients[i] * k[i];
  if (model_type == kBlobModelOneClass) return sum - scalar0;
  const double k_xx = kernel_self(kernel, x_sqnorm);
  return scalar0 - (k_xx - 2.0 * sum + scalar1);
}

double ModelView::decision_value(const util::SparseVector& x,
                                 double x_sqnorm) const {
  const auto k = kernel_row_scratch(support_vectors.rows());
  kernel_row(kernel, support_vectors, has_bitset ? &sv_bitset : nullptr, x,
             x_sqnorm, k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) sum += coefficients[i] * k[i];
  if (model_type == kBlobModelOneClass) return sum - scalar0;
  const double k_xx = kernel_self(kernel, x_sqnorm);
  return scalar0 - (k_xx - 2.0 * sum + scalar1);
}

double ModelView::decision_value(const util::SparseVector& x) const {
  return decision_value(x, x.squared_norm());
}

void ModelView::decision_values(const util::FeatureMatrix& queries,
                                std::span<double> out) const {
  const std::size_t n = support_vectors.rows();
  const std::size_t nq = queries.rows();
  constexpr std::size_t kQueryTile = 64;
  thread_local std::vector<double> block;
  if (block.size() < std::min(kQueryTile, nq) * n) {
    block.resize(std::min(kQueryTile, nq) * n);
  }
  util::BitsetView query_storage;
  const util::BitsetView* query_bits = nullptr;
  if (has_bitset && kernel_dispatch() != nullptr) {
    if (const util::BitsetStorage* qb = queries.bitset()) {
      query_storage = qb->view();
      query_bits = &query_storage;
    }
  }
  for (std::size_t q0 = 0; q0 < nq; q0 += kQueryTile) {
    const std::size_t tile = std::min(kQueryTile, nq - q0);
    const std::span<double> k{block.data(), tile * n};
    util::BitsetView query_slice;
    const util::BitsetView* slice_bits = nullptr;
    if (query_bits != nullptr) {
      query_slice = query_bits->rows_slice(q0, tile);
      slice_bits = &query_slice;
    }
    kernel_block(kernel, support_vectors, has_bitset ? &sv_bitset : nullptr,
                 queries.view().rows_slice(q0, tile), slice_bits, k);
    for (std::size_t t = 0; t < tile; ++t) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum += coefficients[i] * k[t * n + i];
      if (model_type == kBlobModelOneClass) {
        out[q0 + t] = sum - scalar0;
      } else {
        const double k_xx = kernel_self(kernel, queries.sq_norm(q0 + t));
        out[q0 + t] = scalar0 - (k_xx - 2.0 * sum + scalar1);
      }
    }
  }
}

namespace {

/// The heap matrix's cached bitset, attached so views score through the
/// same AND+popcount plane as mmap'd blobs.  Skips the (lazy) build when
/// the plane is disabled.
void attach_bitset(ModelView& view, const util::FeatureMatrix& svs) {
  if (kernel_dispatch() == nullptr) return;
  if (const util::BitsetStorage* bits = svs.bitset()) {
    view.has_bitset = true;
    view.sv_bitset = bits->view();
  }
}

}  // namespace

ModelView view_of(const OneClassSvmModel& model) {
  ModelView view;
  view.model_type = kBlobModelOneClass;
  view.kernel = model.kernel();
  view.scalar0 = model.rho();
  view.scalar1 = 0.0;
  view.support_vectors = model.support_vectors().view();
  view.coefficients = model.coefficients();
  attach_bitset(view, model.support_vectors());
  return view;
}

ModelView view_of(const SvddModel& model) {
  ModelView view;
  view.model_type = kBlobModelSvdd;
  view.kernel = model.kernel();
  view.scalar0 = model.r_squared();
  view.scalar1 = model.alpha_k_alpha();
  view.support_vectors = model.support_vectors().view();
  view.coefficients = model.coefficients();
  attach_bitset(view, model.support_vectors());
  return view;
}

ModelView view_of(const AnySvmModel& model) {
  return std::visit([](const auto& m) { return view_of(m); }, model);
}

AnySvmModel materialize(const ModelView& view) {
  util::FeatureMatrixBuilder builder;
  const auto& svs = view.support_vectors;
  for (std::size_t i = 0; i < svs.rows(); ++i) {
    const auto indices = svs.row_indices(i);
    const auto values = svs.row_values(i);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      builder.add(indices[k], values[k]);
    }
    builder.finish_row();
  }
  util::FeatureMatrix matrix = builder.build(svs.cols);
  std::vector<double> coefficients{view.coefficients.begin(),
                                   view.coefficients.end()};
  if (view.model_type == kBlobModelOneClass) {
    return OneClassSvmModel::from_parts(view.kernel, std::move(matrix),
                                        std::move(coefficients), view.scalar0);
  }
  return SvddModel::from_parts(view.kernel, std::move(matrix),
                               std::move(coefficients), view.scalar0,
                               view.scalar1);
}

}  // namespace wtp::svm
