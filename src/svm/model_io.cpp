#include "svm/model_io.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace wtp::svm {

namespace {

constexpr const char* kMagic = "wtp_svm_model v1";

void write_kernel(std::ostream& out, const KernelParams& kernel) {
  out << "kernel " << to_string(kernel.type) << '\n';
  // max_digits10 round-trips doubles exactly through text.
  out.precision(17);
  out << "gamma " << kernel.gamma << '\n';
  out << "coef0 " << kernel.coef0 << '\n';
  out << "degree " << kernel.degree << '\n';
}

void write_svs(std::ostream& out, const util::FeatureMatrix& svs,
               const std::vector<double>& coefficients) {
  out << "nr_sv " << svs.rows() << '\n';
  out << "SV\n";
  for (std::size_t i = 0; i < svs.rows(); ++i) {
    out << coefficients[i];
    const auto indices = svs.row_indices(i);
    const auto values = svs.row_values(i);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      out << ' ' << indices[k] << ':' << values[k];
    }
    out << '\n';
  }
}

struct Header {
  std::string type;
  KernelParams kernel;
  std::map<std::string, double> scalars;
  std::size_t nr_sv = 0;
};

Header read_header(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || util::trim(line) != kMagic) {
    throw std::runtime_error{"load_model: missing magic line '" + std::string{kMagic} + "'"};
  }
  Header header;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed == "SV") return header;
    std::istringstream fields{std::string{trimmed}};
    std::string key;
    fields >> key;
    if (key == "type") {
      fields >> header.type;
    } else if (key == "kernel") {
      std::string name;
      fields >> name;
      header.kernel.type = parse_kernel_type(name);
    } else if (key == "gamma") {
      fields >> header.kernel.gamma;
    } else if (key == "coef0") {
      fields >> header.kernel.coef0;
    } else if (key == "degree") {
      fields >> header.kernel.degree;
    } else if (key == "nr_sv") {
      fields >> header.nr_sv;
    } else {
      double value = 0.0;
      fields >> value;
      header.scalars[key] = value;
    }
    if (fields.fail()) {
      throw std::runtime_error{"load_model: malformed header line '" + line + "'"};
    }
  }
  throw std::runtime_error{"load_model: missing SV section"};
}

void read_svs(std::istream& in, std::size_t count,
              std::vector<util::SparseVector>& svs, std::vector<double>& coefficients) {
  std::string line;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error{"load_model: expected " + std::to_string(count) +
                               " SV lines, got " + std::to_string(i)};
    }
    std::istringstream fields{line};
    double alpha = 0.0;
    if (!(fields >> alpha)) {
      throw std::runtime_error{"load_model: malformed SV line '" + line + "'"};
    }
    std::vector<util::SparseVector::Entry> entries;
    std::string pair;
    while (fields >> pair) {
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error{"load_model: malformed index:value pair '" + pair + "'"};
      }
      entries.push_back({std::stoul(pair.substr(0, colon)),
                         std::stod(pair.substr(colon + 1))});
    }
    coefficients.push_back(alpha);
    svs.emplace_back(std::move(entries));
  }
}

double require_scalar(const Header& header, const std::string& key) {
  const auto it = header.scalars.find(key);
  if (it == header.scalars.end()) {
    throw std::runtime_error{"load_model: missing '" + key + "' field"};
  }
  return it->second;
}

}  // namespace

void save_model(std::ostream& out, const OneClassSvmModel& model) {
  out << kMagic << '\n';
  out << "type one_class_svm\n";
  write_kernel(out, model.kernel());
  out.precision(17);
  out << "rho " << model.rho() << '\n';
  write_svs(out, model.support_vectors(), model.coefficients());
}

void save_model(std::ostream& out, const SvddModel& model) {
  out << kMagic << '\n';
  out << "type svdd\n";
  write_kernel(out, model.kernel());
  out.precision(17);
  out << "r_squared " << model.r_squared() << '\n';
  out << "alpha_k_alpha " << model.alpha_k_alpha() << '\n';
  write_svs(out, model.support_vectors(), model.coefficients());
}

void save_model_file(const std::string& path, const AnySvmModel& model) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"save_model_file: cannot open '" + path + "'"};
  std::visit([&out](const auto& m) { save_model(out, m); }, model);
}

AnySvmModel load_model(std::istream& in) {
  const Header header = read_header(in);
  std::vector<util::SparseVector> svs;
  std::vector<double> coefficients;
  read_svs(in, header.nr_sv, svs, coefficients);
  if (header.type == "one_class_svm") {
    return OneClassSvmModel::from_parts(header.kernel, std::move(svs),
                                        std::move(coefficients),
                                        require_scalar(header, "rho"));
  }
  if (header.type == "svdd") {
    return SvddModel::from_parts(header.kernel, std::move(svs),
                                 std::move(coefficients),
                                 require_scalar(header, "r_squared"),
                                 require_scalar(header, "alpha_k_alpha"));
  }
  throw std::runtime_error{"load_model: unknown model type '" + header.type + "'"};
}

AnySvmModel load_model_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_model_file: cannot open '" + path + "'"};
  return load_model(in);
}

OneClassSvmModel load_one_class_model(std::istream& in) {
  AnySvmModel model = load_model(in);
  if (auto* typed = std::get_if<OneClassSvmModel>(&model)) return std::move(*typed);
  throw std::runtime_error{"load_one_class_model: stored model is not one_class_svm"};
}

SvddModel load_svdd_model(std::istream& in) {
  AnySvmModel model = load_model(in);
  if (auto* typed = std::get_if<SvddModel>(&model)) return std::move(*typed);
  throw std::runtime_error{"load_svdd_model: stored model is not svdd"};
}

}  // namespace wtp::svm
