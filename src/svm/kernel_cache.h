// LRU cache of kernel-matrix rows for the SMO solver (LibSVM-style).
//
// The solver touches two Q rows per iteration; with a working set that
// revisits the same points, caching rows bounds the kernel-evaluation cost.
// Rows are stored as float (as in LibSVM) to double the effective cache.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <span>
#include <vector>

#include "util/feature_matrix.h"

namespace wtp::svm {

class KernelCache {
 public:
  /// `rows` is the matrix order l; `budget_bytes` bounds total row storage
  /// (at least one row is always cached).
  KernelCache(std::size_t rows, std::size_t budget_bytes);

  /// Returns row `i`, computing it via `fill(i, out)` on a miss.  The span
  /// is valid until the next get() call (which may evict it).
  std::span<const float> get(
      std::size_t i,
      const std::function<void(std::size_t, std::span<float>)>& fill);

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    std::vector<float> data;
    std::list<std::size_t>::iterator lru_pos;
    bool cached = false;
  };

  void evict_one();

  std::size_t rows_;
  std::size_t max_cached_rows_;
  std::vector<Slot> slots_;
  std::list<std::size_t> lru_;  // front = most recent
  std::size_t cached_count_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// LRU cache of raw dot-product rows (row_i . row_j for all j) of one
/// training matrix.  Every grid-search kernel is a cheap scalar transform
/// of the same Gram row (kernel_transform), so a sweep that shares one
/// GramCache across its per-kernel QMatrix instances computes each row's
/// sparse dots once and pays only the transform per kernel.  Rows are
/// stored in double so transform inputs are bit-identical to the direct
/// dot_all path.  The matrix must outlive the cache.
///
/// Thread-safe: the grid sweep solves its kernel columns as parallel tasks
/// that share one cache, so row() copies out under an internal mutex
/// instead of handing out spans into evictable slots.
class GramCache {
 public:
  explicit GramCache(const util::FeatureMatrix& data,
                     std::size_t budget_bytes = std::size_t{32} << 20);

  /// Copies dot-product row `i` into `out` (size = rows), computing it on
  /// first access.
  void row(std::size_t i, std::span<double> out);

  [[nodiscard]] const util::FeatureMatrix& data() const noexcept {
    return *data_;
  }
  [[nodiscard]] std::size_t hits() const noexcept;
  [[nodiscard]] std::size_t misses() const noexcept;

 private:
  struct Slot {
    std::vector<double> data;
    std::list<std::size_t>::iterator lru_pos;
    bool cached = false;
  };

  void evict_one();

  const util::FeatureMatrix* data_;
  std::size_t max_cached_rows_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::list<std::size_t> lru_;  // front = most recent
  std::size_t cached_count_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace wtp::svm
