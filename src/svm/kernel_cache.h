// LRU cache of kernel-matrix rows for the SMO solver (LibSVM-style).
//
// The solver touches two Q rows per iteration; with a working set that
// revisits the same points, caching rows bounds the kernel-evaluation cost.
// Rows are stored as float (as in LibSVM) to double the effective cache.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <span>
#include <vector>

namespace wtp::svm {

class KernelCache {
 public:
  /// `rows` is the matrix order l; `budget_bytes` bounds total row storage
  /// (at least one row is always cached).
  KernelCache(std::size_t rows, std::size_t budget_bytes);

  /// Returns row `i`, computing it via `fill(i, out)` on a miss.  The span
  /// is valid until the next get() call (which may evict it).
  std::span<const float> get(
      std::size_t i,
      const std::function<void(std::size_t, std::span<float>)>& fill);

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    std::vector<float> data;
    std::list<std::size_t>::iterator lru_pos;
    bool cached = false;
  };

  void evict_one();

  std::size_t rows_;
  std::size_t max_cached_rows_;
  std::vector<Slot> slots_;
  std::list<std::size_t> lru_;  // front = most recent
  std::size_t cached_count_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace wtp::svm
