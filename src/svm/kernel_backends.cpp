// SIMD bitset dot backends behind the kernel_dispatch seam (DESIGN §11).
//
// Each backend implements util::BitsetDotOps — AND+popcount over 64-bit
// words plus the fused dot_rows (popcount + order-exact combine) — with
// per-function target attributes, so one translation unit compiled without
// global -mavx* flags carries every variant and the dispatcher picks one at
// startup via __builtin_cpu_supports.  The combine is stamped from
// util/bitset_dot_body.inc, the same source every backend (including the
// scalar reference) compiles, which is why every backend is bit-identical
// by construction (the equivalence suites still enforce it); compiling it
// under the target attribute keeps the replay's segment popcounts on
// hardware POPCNT.
//
//   scalar — std::popcount, no target requirements (the reference).
//   popcnt — hardware POPCNT over one word at a time.
//   avx2   — Mula's vpshufb nibble-LUT popcount, 4 words per iteration,
//            accumulated with vpsadbw (no byte-counter overflow to manage).
//   avx512 — vpopcntdq, 8 words per iteration (AVX-512F + VPOPCNTDQ).
#include "svm/kernel_backends.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "util/bitset_view.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define WTP_X86 1
#else
#define WTP_X86 0
#endif

namespace wtp::svm::detail {

namespace {

using std::size_t;
using std::uint64_t;

// ---------------------------------------------------------------- scalar --

bool always_supported() { return true; }

// ---------------------------------------------------------------- popcnt --
#if WTP_X86

__attribute__((target("popcnt"))) uint64_t pc_and_popcount(const uint64_t* a,
                                                           const uint64_t* b,
                                                           size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("popcnt"))) void pc_and_popcount_rows(
    const uint64_t* query, const uint64_t* rows, size_t w, size_t n_rows,
    uint64_t* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    const uint64_t* row = rows + r * w;
    uint64_t total = 0;
    for (size_t i = 0; i < w; ++i) {
      total += static_cast<uint64_t>(__builtin_popcountll(query[i] & row[i]));
    }
    out[r] = total;
  }
}

__attribute__((target("popcnt"))) void pc_and_popcount_block(
    const uint64_t* queries, size_t n_queries, const uint64_t* rows,
    size_t n_rows, size_t w, uint64_t* out) {
  for (size_t q = 0; q < n_queries; ++q) {
    pc_and_popcount_rows(queries + q * w, rows, w, n_rows, out + q * n_rows);
  }
}

bool popcnt_supported() { return __builtin_cpu_supports("popcnt") != 0; }

#define WTP_DOT_FN(name) pc_##name
#define WTP_DOT_ATTR __attribute__((target("popcnt")))
#define WTP_DOT_POPCOUNT(x) static_cast<uint64_t>(__builtin_popcountll(x))
#define WTP_DOT_ROW_TOTAL(q, r, w) pc_and_popcount((q), (r), (w))
#include "util/bitset_dot_body.inc"
#undef WTP_DOT_FN
#undef WTP_DOT_ATTR
#undef WTP_DOT_POPCOUNT
#undef WTP_DOT_ROW_TOTAL

// ------------------------------------------------------------------ avx2 --

/// popcount of every byte of `v` via two nibble table lookups.
__attribute__((target("avx2"))) inline __m256i avx2_byte_popcount(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2,popcnt"))) inline uint64_t avx2_and_popcount_one(
    const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(avx2_byte_popcount(v), _mm256_setzero_si256()));
  }
  const __m128i lanes = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                      _mm256_extracti128_si256(acc, 1));
  uint64_t total = static_cast<uint64_t>(_mm_cvtsi128_si64(lanes)) +
                   static_cast<uint64_t>(_mm_extract_epi64(lanes, 1));
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx2,popcnt"))) uint64_t avx2_and_popcount(
    const uint64_t* a, const uint64_t* b, size_t n) {
  return avx2_and_popcount_one(a, b, n);
}

__attribute__((target("avx2,popcnt"))) void avx2_and_popcount_rows(
    const uint64_t* query, const uint64_t* rows, size_t w, size_t n_rows,
    uint64_t* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = avx2_and_popcount_one(query, rows + r * w, w);
  }
}

/// Blocked mini-popcount-GEMM: two queries share each loaded row vector, so
/// the row block streams from cache half as often per query.
__attribute__((target("avx2,popcnt"))) void avx2_and_popcount_block(
    const uint64_t* queries, size_t n_queries, const uint64_t* rows,
    size_t n_rows, size_t w, uint64_t* out) {
  size_t q = 0;
  for (; q + 2 <= n_queries; q += 2) {
    const uint64_t* q0 = queries + q * w;
    const uint64_t* q1 = q0 + w;
    uint64_t* out0 = out + q * n_rows;
    uint64_t* out1 = out0 + n_rows;
    for (size_t r = 0; r < n_rows; ++r) {
      const uint64_t* row = rows + r * w;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      size_t i = 0;
      for (; i + 4 <= w; i += 4) {
        const __m256i rv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
        const __m256i v0 = _mm256_and_si256(
            rv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q0 + i)));
        const __m256i v1 = _mm256_and_si256(
            rv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q1 + i)));
        acc0 = _mm256_add_epi64(
            acc0, _mm256_sad_epu8(avx2_byte_popcount(v0), _mm256_setzero_si256()));
        acc1 = _mm256_add_epi64(
            acc1, _mm256_sad_epu8(avx2_byte_popcount(v1), _mm256_setzero_si256()));
      }
      const __m128i l0 = _mm_add_epi64(_mm256_castsi256_si128(acc0),
                                       _mm256_extracti128_si256(acc0, 1));
      const __m128i l1 = _mm_add_epi64(_mm256_castsi256_si128(acc1),
                                       _mm256_extracti128_si256(acc1, 1));
      uint64_t t0 = static_cast<uint64_t>(_mm_cvtsi128_si64(l0)) +
                    static_cast<uint64_t>(_mm_extract_epi64(l0, 1));
      uint64_t t1 = static_cast<uint64_t>(_mm_cvtsi128_si64(l1)) +
                    static_cast<uint64_t>(_mm_extract_epi64(l1, 1));
      for (; i < w; ++i) {
        t0 += static_cast<uint64_t>(__builtin_popcountll(q0[i] & row[i]));
        t1 += static_cast<uint64_t>(__builtin_popcountll(q1[i] & row[i]));
      }
      out0[r] = t0;
      out1[r] = t1;
    }
  }
  for (; q < n_queries; ++q) {
    avx2_and_popcount_rows(queries + q * w, rows, w, n_rows, out + q * n_rows);
  }
}

bool avx2_supported() {
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("popcnt") != 0;
}

#define WTP_DOT_FN(name) avx2_##name
#define WTP_DOT_ATTR __attribute__((target("avx2,popcnt")))
#define WTP_DOT_POPCOUNT(x) static_cast<uint64_t>(__builtin_popcountll(x))
#define WTP_DOT_ROW_TOTAL(q, r, w) avx2_and_popcount_one((q), (r), (w))
#include "util/bitset_dot_body.inc"
#undef WTP_DOT_FN
#undef WTP_DOT_ATTR
#undef WTP_DOT_POPCOUNT
#undef WTP_DOT_ROW_TOTAL

// ---------------------------------------------------------------- avx512 --

// GCC 12's _mm256_undefined_si256 (inlined through _mm512_reduce_add_epi64
// and the maskz loads) trips -Wmaybe-uninitialized on a variable the
// intrinsic defines as intentionally undefined; silence just this section.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

// avx512f implies FMA, so every function in this section pins
// fp-contract=off: GCC's vector mul/add intrinsics are plain operators and
// the stamped replay's `sum += q*r` is scalar code — either would otherwise
// fuse into vfmadd and single-round products the baseline-ISA oracle (and
// the scalar/popcnt/avx2 backends, whose targets have no FMA) round twice.
// One shared attribute set also keeps cross-function inlining legal.
#define WTP_AVX512_ATTR                                      \
  __attribute__((target("avx512f,avx512vpopcntdq,popcnt"),   \
                 optimize("-ffp-contract=off")))

WTP_AVX512_ATTR inline uint64_t
avx512_and_popcount_one(const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  if (i < n) {
    // Masked tail: one partial vector instead of up to 7 scalar words (the
    // paper shape is 14 words/row — a scalar tail would cover 6 of them).
    const __mmask8 tail = static_cast<__mmask8>((1U << (n - i)) - 1);
    const __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(tail, a + i),
                                       _mm512_maskz_loadu_epi64(tail, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

WTP_AVX512_ATTR uint64_t
avx512_and_popcount(const uint64_t* a, const uint64_t* b, size_t n) {
  return avx512_and_popcount_one(a, b, n);
}

WTP_AVX512_ATTR void
avx512_and_popcount_rows(const uint64_t* query, const uint64_t* rows, size_t w,
                         size_t n_rows, uint64_t* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = avx512_and_popcount_one(query, rows + r * w, w);
  }
}

WTP_AVX512_ATTR void
avx512_and_popcount_block(const uint64_t* queries, size_t n_queries,
                          const uint64_t* rows, size_t n_rows, size_t w,
                          uint64_t* out) {
  size_t q = 0;
  for (; q + 2 <= n_queries; q += 2) {
    const uint64_t* q0 = queries + q * w;
    const uint64_t* q1 = q0 + w;
    uint64_t* out0 = out + q * n_rows;
    uint64_t* out1 = out0 + n_rows;
    for (size_t r = 0; r < n_rows; ++r) {
      const uint64_t* row = rows + r * w;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      size_t i = 0;
      for (; i + 8 <= w; i += 8) {
        const __m512i rv = _mm512_loadu_si512(row + i);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_and_si512(rv, _mm512_loadu_si512(q0 + i))));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_and_si512(rv, _mm512_loadu_si512(q1 + i))));
      }
      uint64_t t0 = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc0));
      uint64_t t1 = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc1));
      for (; i < w; ++i) {
        t0 += static_cast<uint64_t>(__builtin_popcountll(q0[i] & row[i]));
        t1 += static_cast<uint64_t>(__builtin_popcountll(q1[i] & row[i]));
      }
      out0[r] = t0;
      out1[r] = t1;
    }
  }
  for (; q < n_queries; ++q) {
    avx512_and_popcount_rows(queries + q * w, rows, w, n_rows,
                             out + q * n_rows);
  }
}

bool avx512_supported() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0 &&
         __builtin_cpu_supports("popcnt") != 0;
}

// Stamped from bitset_dot_body.inc below; forward-declared for the lane
// fixups in the vectorized prefix.
WTP_AVX512_ATTR static double
avx512_replay_row(const util::BitsetView& m, const uint64_t* query_words,
                  const double* query_numeric, const uint64_t* row_words,
                  const double* row_numeric, uint64_t total);

/// Vectorized prefix for the fused dot (WTP_DOT_VECTOR_PREFIX hook in
/// bitset_dot_body.inc).  Requires the paper layout: exactly three numeric
/// columns on consecutive bits of word 0.  Consecutive numeric columns mean
/// the middle replay segments are structurally empty (numeric bits are never
/// set in the words), so the combine for EVERY row — slow or not — is the
/// same flat sequence: (double)p0, +q0*r0, +q1*r1, +q2*r2, then up to four
/// 1.0 pads.  That sequence runs lane-parallel over 8 rows: the pads become
/// merge-masked vaddpd (a masked-off lane is the same no-op as the scalar
/// path's +(-0.0) pad), and lanes whose trailing popcount exceeds the pad
/// budget are recomputed exactly via replay_row.  No data-dependent branches
/// per row, and bit-identical to the scalar loop by the same argument.
///
/// Returns the number of leading rows handled (a multiple of 8; 0 when the
/// layout does not match and the caller's scalar loop takes every row).
///
/// fp-contract must stay off here: GCC's mul/add intrinsics lower to plain
/// vector operators, and letting them fuse into vfmadd would single-round
/// the products the baseline-ISA oracle rounds twice.
WTP_AVX512_ATTR size_t
avx512_dot_rows_prefix(const util::BitsetView& m, const uint64_t* qw,
                       const double* qn, double* out) {
  if (m.numeric_cols.size() != 3) return 0;
  const std::uint32_t c0 = m.numeric_cols[0];
  if (m.numeric_cols[1] != c0 + 1 || m.numeric_cols[2] != c0 + 2 ||
      m.numeric_cols[2] >= 64) {
    return 0;
  }
  const size_t n8 = m.row_count & ~size_t{7};
  if (n8 == 0) return 0;
  const size_t w = m.words_per_row;
  // One full + one masked vector per row keeps the totals loop flat; wider
  // layouts than 1024 columns take the scalar specialized loop instead.
  if (w > 16) return 0;
  const __mmask8 wmask0 =
      w >= 8 ? static_cast<__mmask8>(0xFF)
             : static_cast<__mmask8>((1U << w) - 1);
  const __mmask8 wtail =
      w > 8 ? static_cast<__mmask8>((1U << (w - 8)) - 1)
            : static_cast<__mmask8>(0);
  const __m512i qv0 = _mm512_maskz_loadu_epi64(wmask0, qw);
  const __m512i qv1 = wtail != 0 ? _mm512_maskz_loadu_epi64(wtail, qw + 8)
                                 : _mm512_setzero_si512();
  const __m512i vrow_step = _mm512_setr_epi64(
      0, static_cast<long long>(w), static_cast<long long>(2 * w),
      static_cast<long long>(3 * w), static_cast<long long>(4 * w),
      static_cast<long long>(5 * w), static_cast<long long>(6 * w),
      static_cast<long long>(7 * w));
  const __m512i vqw0 = _mm512_set1_epi64(static_cast<long long>(qw[0]));
  const __m512i vmask0 =
      _mm512_set1_epi64(static_cast<long long>((uint64_t{1} << c0) - 1));
  const __m512d vqn0 = _mm512_set1_pd(qn[0]);
  const __m512d vqn1 = _mm512_set1_pd(qn[1]);
  const __m512d vqn2 = _mm512_set1_pd(qn[2]);
  const __m512d vone = _mm512_set1_pd(1.0);
  // Stride-3 deinterleave of 24 row-major numeric doubles into one vector
  // per column: lanes below 16 come from permutex2var(z0, z1), the rest are
  // merged in from z2.
  const __m512i idx_a0 = _mm512_setr_epi64(0, 3, 6, 9, 12, 15, 0, 0);
  const __m512i idx_b0 = _mm512_setr_epi64(0, 0, 0, 0, 0, 0, 2, 5);
  const __m512i idx_a1 = _mm512_setr_epi64(1, 4, 7, 10, 13, 0, 0, 0);
  const __m512i idx_b1 = _mm512_setr_epi64(0, 0, 0, 0, 0, 0, 3, 6);
  const __m512i idx_a2 = _mm512_setr_epi64(2, 5, 8, 11, 14, 0, 0, 0);
  const __m512i idx_b2 = _mm512_setr_epi64(0, 0, 0, 0, 0, 1, 4, 7);
  const uint64_t* rw = m.words.data();
  const double* rn = m.numeric_values.data();
  for (size_t r = 0; r < n8; r += 8, rw += 8 * w, rn += 24) {
    // AND+popcount accumulators for 8 rows, horizontally summed by one
    // qword transpose-add tree — no per-row reduce, no store-forward trip
    // through a scalar buffer.
    __m512i acc[8];
    for (int t = 0; t < 8; ++t) {
      const uint64_t* row = rw + static_cast<size_t>(t) * w;
      acc[t] = _mm512_popcnt_epi64(
          _mm512_and_si512(qv0, _mm512_maskz_loadu_epi64(wmask0, row)));
      if (wtail != 0) {
        acc[t] = _mm512_add_epi64(
            acc[t], _mm512_popcnt_epi64(_mm512_and_si512(
                        qv1, _mm512_maskz_loadu_epi64(wtail, row + 8))));
      }
    }
    const __m512i s01 = _mm512_add_epi64(_mm512_unpacklo_epi64(acc[0], acc[1]),
                                         _mm512_unpackhi_epi64(acc[0], acc[1]));
    const __m512i s23 = _mm512_add_epi64(_mm512_unpacklo_epi64(acc[2], acc[3]),
                                         _mm512_unpackhi_epi64(acc[2], acc[3]));
    const __m512i s45 = _mm512_add_epi64(_mm512_unpacklo_epi64(acc[4], acc[5]),
                                         _mm512_unpackhi_epi64(acc[4], acc[5]));
    const __m512i s67 = _mm512_add_epi64(_mm512_unpacklo_epi64(acc[6], acc[7]),
                                         _mm512_unpackhi_epi64(acc[6], acc[7]));
    const __m512i q0123 =
        _mm512_add_epi64(_mm512_shuffle_i64x2(s01, s23, 0x88),
                         _mm512_shuffle_i64x2(s01, s23, 0xDD));
    const __m512i q4567 =
        _mm512_add_epi64(_mm512_shuffle_i64x2(s45, s67, 0x88),
                         _mm512_shuffle_i64x2(s45, s67, 0xDD));
    const __m512i vtot =
        _mm512_add_epi64(_mm512_shuffle_i64x2(q0123, q4567, 0x88),
                         _mm512_shuffle_i64x2(q0123, q4567, 0xDD));
    const __m512i a0 = _mm512_and_si512(
        _mm512_i64gather_epi64(vrow_step, rw, 8), vqw0);
    const __m512i p0 = _mm512_popcnt_epi64(_mm512_and_si512(a0, vmask0));
    const __m512d z0 = _mm512_loadu_pd(rn);
    const __m512d z1 = _mm512_loadu_pd(rn + 8);
    const __m512d z2 = _mm512_loadu_pd(rn + 16);
    const __m512d rn0 = _mm512_mask_permutexvar_pd(
        _mm512_permutex2var_pd(z0, idx_a0, z1), 0xC0, idx_b0, z2);
    const __m512d rn1 = _mm512_mask_permutexvar_pd(
        _mm512_permutex2var_pd(z0, idx_a1, z1), 0xE0, idx_b1, z2);
    const __m512d rn2 = _mm512_mask_permutexvar_pd(
        _mm512_permutex2var_pd(z0, idx_a2, z1), 0xE0, idx_b2, z2);
    // p0 <= 64, so the int32 convert (plain AVX-512F, no DQ) is exact.
    __m512d sums = _mm512_cvtepi32_pd(_mm512_cvtepi64_epi32(p0));
    sums = _mm512_add_pd(sums, _mm512_mul_pd(vqn0, rn0));
    sums = _mm512_add_pd(sums, _mm512_mul_pd(vqn1, rn1));
    sums = _mm512_add_pd(sums, _mm512_mul_pd(vqn2, rn2));
    const __m512i tail = _mm512_sub_epi64(vtot, p0);
    sums = _mm512_mask_add_pd(
        sums, _mm512_cmpgt_epu64_mask(tail, _mm512_setzero_si512()), sums,
        vone);
    sums = _mm512_mask_add_pd(
        sums, _mm512_cmpgt_epu64_mask(tail, _mm512_set1_epi64(1)), sums, vone);
    sums = _mm512_mask_add_pd(
        sums, _mm512_cmpgt_epu64_mask(tail, _mm512_set1_epi64(2)), sums, vone);
    sums = _mm512_mask_add_pd(
        sums, _mm512_cmpgt_epu64_mask(tail, _mm512_set1_epi64(3)), sums, vone);
    _mm512_storeu_pd(out + r, sums);
    const __mmask8 big = _mm512_cmpgt_epu64_mask(tail, _mm512_set1_epi64(4));
    if (big != 0) [[unlikely]] {
      alignas(64) uint64_t tot_buf[8];
      _mm512_store_si512(tot_buf, vtot);
      unsigned lanes = big;
      while (lanes != 0) {
        const unsigned t = static_cast<unsigned>(__builtin_ctz(lanes));
        lanes &= lanes - 1;
        out[r + t] =
            avx512_replay_row(m, qw, qn, rw + t * w, rn + t * 3, tot_buf[t]);
      }
    }
  }
  return n8;
}

#define WTP_DOT_VECTOR_PREFIX avx512_dot_rows_prefix
#define WTP_DOT_FN(name) avx512_##name
#define WTP_DOT_ATTR WTP_AVX512_ATTR
#define WTP_DOT_POPCOUNT(x) static_cast<uint64_t>(__builtin_popcountll(x))
#define WTP_DOT_ROW_TOTAL(q, r, w) avx512_and_popcount_one((q), (r), (w))
#include "util/bitset_dot_body.inc"
#undef WTP_DOT_VECTOR_PREFIX
#undef WTP_DOT_FN
#undef WTP_DOT_ATTR
#undef WTP_DOT_POPCOUNT
#undef WTP_DOT_ROW_TOTAL
#undef WTP_AVX512_ATTR

#pragma GCC diagnostic pop

const util::BitsetDotOps kPopcntOps{"popcnt", &pc_and_popcount,
                                    &pc_and_popcount_rows,
                                    &pc_and_popcount_block, &pc_dot_rows};
const util::BitsetDotOps kAvx2Ops{"avx2", &avx2_and_popcount,
                                  &avx2_and_popcount_rows,
                                  &avx2_and_popcount_block, &avx2_dot_rows};
const util::BitsetDotOps kAvx512Ops{"avx512", &avx512_and_popcount,
                                    &avx512_and_popcount_rows,
                                    &avx512_and_popcount_block,
                                    &avx512_dot_rows};
#endif  // WTP_X86

}  // namespace

std::span<const KernelBackend> kernel_backends() noexcept {
#if WTP_X86
  static const std::array<KernelBackend, 4> kBackends{{
      {&kAvx512Ops, &avx512_supported},
      {&kAvx2Ops, &avx2_supported},
      {&kPopcntOps, &popcnt_supported},
      {&util::scalar_bitset_ops(), &always_supported},
  }};
#else
  static const std::array<KernelBackend, 1> kBackends{{
      {&util::scalar_bitset_ops(), &always_supported},
  }};
#endif
  return kBackends;
}

}  // namespace wtp::svm::detail
