// Internal registry of bitset dot backends (svm/kernel_backends.cpp).
// kernel.cpp's dispatch seam selects from this list; tests iterate it to
// run every host-supported backend against the scalar oracle.
#pragma once

#include <span>

#include "util/bitset_view.h"

namespace wtp::svm::detail {

struct KernelBackend {
  const util::BitsetDotOps* ops;
  /// Runtime CPU check; the backend may only be invoked when this is true.
  bool (*supported)();
};

/// All compiled-in backends, fastest first ("avx512", "avx2", "popcnt",
/// "scalar").  The scalar entry is always last and always supported.
[[nodiscard]] std::span<const KernelBackend> kernel_backends() noexcept;

}  // namespace wtp::svm::detail
