// Internal registries of SIMD kernel backends.
//
//   kernel_backends()    — bitset dot backends (svm/kernel_backends.cpp),
//                          AND+popcount over the bitset plane (DESIGN §11).
//   transform_backends() — kernel-transform backends
//                          (svm/transform_backends.cpp), the vectorized
//                          tail that turns raw dots into kernel values
//                          (DESIGN §14).
//
// kernel.cpp's dispatch seam selects from these lists; tests iterate them
// to run every host-supported backend against the scalar oracle.
#pragma once

#include <cstddef>
#include <span>

#include "util/bitset_view.h"

namespace wtp::svm::detail {

struct KernelBackend {
  const util::BitsetDotOps* ops;
  /// Runtime CPU check; the backend may only be invoked when this is true.
  bool (*supported)();
};

/// All compiled-in backends, fastest first ("avx512", "avx2", "popcnt",
/// "scalar").  The scalar entry is always last and always supported.
[[nodiscard]] std::span<const KernelBackend> kernel_backends() noexcept;

/// One kernel-transform backend: in-place per-element ops over a tile of
/// raw dot products (DESIGN §14).
///
/// The first three entries are the EXACT tier: pure mul/add/max arithmetic
/// stamped from svm/kernel_scalar_body.h with fp-contract pinned off, so
/// every backend is bit-identical to the scalar expressions in kernel_eval.
/// The last two are the RELAXED tier: vectorized exp/tanh stamped from
/// svm/relaxed_math.h, only ever invoked when the effective TransformMode
/// is kRelaxed (the exact tier calls libm per element instead).
struct TransformOps {
  const char* name;
  /// inout[j] = -gamma * max(x_sqnorm + sq_norms[j] - 2*inout[j], 0) —
  /// the RBF exponent with the cancellation clamp (NaN clamps to 0 too).
  void (*rbf_exp_args)(double gamma, double x_sqnorm, const double* sq_norms,
                       double* inout, std::size_t n);
  /// inout[j] = gamma * inout[j] + coef0 — the sigmoid/polynomial pre-scale.
  void (*affine_args)(double gamma, double coef0, double* inout,
                      std::size_t n);
  /// inout[j] = powi(gamma * inout[j] + coef0, degree) — the full polynomial
  /// transform, lane-parallel repeated squaring (no libm involved).
  void (*poly_transform)(double gamma, double coef0, int degree, double* inout,
                         std::size_t n);
  /// Relaxed tier: inout[j] = relaxed_exp(inout[j]) (see relaxed_math.h for
  /// the ULP contract).
  void (*exp_inplace)(double* inout, std::size_t n);
  /// Relaxed tier: inout[j] = relaxed_tanh(inout[j]).
  void (*tanh_inplace)(double* inout, std::size_t n);
};

struct TransformBackend {
  const TransformOps* ops;
  /// Runtime CPU check; the backend may only be invoked when this is true.
  bool (*supported)();
};

/// All compiled-in transform backends, fastest first ("avx512", "avx2",
/// "scalar").  The scalar entry is always last and always supported.
[[nodiscard]] std::span<const TransformBackend> transform_backends() noexcept;

/// The always-available scalar reference backend (also the fallback when a
/// requested backend is unsupported).
[[nodiscard]] const TransformOps& scalar_transform_ops() noexcept;

}  // namespace wtp::svm::detail
