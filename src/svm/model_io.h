// Persistence for trained one-class models (text format, libsvm-inspired).
//
// Layout:
//   wtp_svm_model v1
//   type one_class_svm | svdd
//   kernel <linear|polynomial|rbf|sigmoid>
//   gamma <g>
//   coef0 <c>
//   degree <d>
//   rho <r>                      (one_class_svm)
//   r_squared <r2>               (svdd)
//   alpha_k_alpha <aka>          (svdd)
//   nr_sv <n>
//   SV
//   <alpha> <index>:<value> <index>:<value> ...     (n lines)
#pragma once

#include <iosfwd>
#include <string>
#include <variant>

#include "svm/one_class_svm.h"
#include "svm/svdd.h"

namespace wtp::svm {

using AnySvmModel = std::variant<OneClassSvmModel, SvddModel>;

void save_model(std::ostream& out, const OneClassSvmModel& model);
void save_model(std::ostream& out, const SvddModel& model);
void save_model_file(const std::string& path, const AnySvmModel& model);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] AnySvmModel load_model(std::istream& in);
[[nodiscard]] AnySvmModel load_model_file(const std::string& path);

/// Typed loads; throw std::runtime_error when the stored type differs.
[[nodiscard]] OneClassSvmModel load_one_class_model(std::istream& in);
[[nodiscard]] SvddModel load_svdd_model(std::istream& in);

}  // namespace wtp::svm
