// Persistence for trained one-class models.
//
// Two formats live here:
//
// 1. Text (libsvm-inspired), one file per model:
//   wtp_svm_model v1
//   type one_class_svm | svdd
//   kernel <linear|polynomial|rbf|sigmoid>
//   gamma <g>
//   coef0 <c>
//   degree <d>
//   rho <r>                      (one_class_svm)
//   r_squared <r2>               (svdd)
//   alpha_k_alpha <aka>          (svdd)
//   nr_sv <n>
//   SV
//   <alpha> <index>:<value> <index>:<value> ...     (n lines)
//
// 2. Binary blob (the mmap path): a self-contained little-endian block that
//    can be viewed in place from a memory-mapped file with zero copies.
//    All sections sit at their natural alignment provided the blob itself
//    starts 8-byte aligned:
//
//      offset  size  field
//      0       8     magic "WTPSVMB1"
//      8       4     u32 version (= 1)
//      12      4     u32 endianness guard (= 0x01020304 as written)
//      16      4     u32 model type (0 = one_class_svm, 1 = svdd)
//      20      4     u32 kernel type (KernelType enum value)
//      24      8     f64 gamma
//      32      8     f64 coef0
//      40      4     i32 degree
//      44      4     u32 value format (0 = f64; reserved for quantization)
//      48      8     f64 scalar0 (rho | r_squared)
//      56      8     f64 scalar1 (0  | alpha_k_alpha)
//      64      8     u64 sv_count
//      72      8     u64 nnz
//      80      8     u64 cols
//      88      8     u64 blob_size (whole blob, header included)
//      96            u64 row_offsets[sv_count + 1]
//      ...           u32 indices[nnz], padded to 8
//      ...           f64 values[nnz]
//      ...           f64 sq_norms[sv_count]
//      ...           f64 coefficients[sv_count]
//
//    Version 2 (written when the SV block is bitset-representable, DESIGN
//    §11) appends the bitset companion after the v1 sections, so mapped
//    stores score through the AND+popcount plane zero-copy:
//
//      ...           u64 bitset words_per_row (= ceil(cols / 64))
//      ...           u64 numeric column count
//      ...           u32 numeric_cols[count], ascending, padded to 8
//      ...           u64 words[sv_count * words_per_row]
//      ...           f64 numeric_values[sv_count * count]
//
//    Values stay f64 so mmap-viewed decisions are bit-identical to the heap
//    models they were serialized from; compactness comes from u32 indices,
//    the shared store-level schema, and the absence of per-model heap churn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "svm/one_class_svm.h"
#include "svm/svdd.h"

namespace wtp::svm {

using AnySvmModel = std::variant<OneClassSvmModel, SvddModel>;

void save_model(std::ostream& out, const OneClassSvmModel& model);
void save_model(std::ostream& out, const SvddModel& model);
void save_model_file(const std::string& path, const AnySvmModel& model);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] AnySvmModel load_model(std::istream& in);
[[nodiscard]] AnySvmModel load_model_file(const std::string& path);

/// Typed loads; throw std::runtime_error when the stored type differs.
[[nodiscard]] OneClassSvmModel load_one_class_model(std::istream& in);
[[nodiscard]] SvddModel load_svdd_model(std::istream& in);

// ---------------------------------------------------------------------------
// Binary blob plane (the mmap path).

constexpr std::uint32_t kBlobModelOneClass = 0;
constexpr std::uint32_t kBlobModelSvdd = 1;

/// Non-owning decision-capable view of one model, either over a binary blob
/// (mmap) or borrowed from a heap model (view_of).  Scoring goes through the
/// same CsrView kernel_row path in both cases, so decision values are
/// bit-identical regardless of who owns the support vectors.
struct ModelView {
  std::uint32_t model_type = kBlobModelOneClass;
  KernelParams kernel;
  double scalar0 = 0.0;  ///< rho (one_class) | r_squared (svdd)
  double scalar1 = 0.0;  ///< 0               | alpha_k_alpha (svdd)
  util::CsrView support_vectors;
  std::span<const double> coefficients;  ///< aligned with SV rows
  /// Bitset companion of the SV block (blob v2, or the heap matrix's cached
  /// bitset via view_of); scoring routes dots through the dispatched
  /// AND+popcount backend when set.  Absent => pure CSR scoring.
  bool has_bitset = false;
  util::BitsetView sv_bitset;

  [[nodiscard]] std::size_t sv_count() const noexcept {
    return support_vectors.rows();
  }
  /// Same arithmetic (same expressions, same order) as the heap models'
  /// decision_value, replicated over the view.
  [[nodiscard]] double decision_value(std::span<const std::uint32_t> query_indices,
                                      std::span<const double> query_values,
                                      double x_sqnorm) const;
  [[nodiscard]] double decision_value(const util::SparseVector& x,
                                      double x_sqnorm) const;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const;
  /// As above with a shared query-encoding cache (cascade fan-outs score
  /// one window against many same-layout SV blocks); `cache` may be null.
  [[nodiscard]] double decision_value(std::span<const std::uint32_t> query_indices,
                                      std::span<const double> query_values,
                                      double x_sqnorm,
                                      EncodedQueryCache* cache) const;
  /// Batched decisions over every row of `queries` (kernel_block path),
  /// bit-identical to per-row decision_value.  `out` needs queries.rows().
  void decision_values(const util::FeatureMatrix& queries,
                       std::span<double> out) const;
};

/// Serializes a model as a binary blob appended to `out`.  Pads `out` to
/// 8-byte alignment first; returns the offset where the blob starts (its
/// size is out.size() - offset afterwards, also recorded in the header).
std::size_t append_model_blob(std::vector<std::byte>& out,
                              const OneClassSvmModel& model);
std::size_t append_model_blob(std::vector<std::byte>& out, const SvddModel& model);
std::size_t append_model_blob(std::vector<std::byte>& out, const AnySvmModel& model);

/// Validates a blob (magic, version, endianness guard, size/offset and
/// index-bound consistency) and returns a zero-copy view into it.  `blob`
/// must start 8-byte aligned (mmap pages and append_model_blob both
/// guarantee this).  Throws std::runtime_error on any malformation.
[[nodiscard]] ModelView view_model_blob(std::span<const std::byte> blob);

/// Borrowed views of heap models — the bridge that lets one scoring path
/// serve both storage backends.  Valid while the model is.
[[nodiscard]] ModelView view_of(const OneClassSvmModel& model);
[[nodiscard]] ModelView view_of(const SvddModel& model);
[[nodiscard]] ModelView view_of(const AnySvmModel& model);

/// Deep-copies a view back into an owning heap model (round-trip tests,
/// migration off a mapped store).
[[nodiscard]] AnySvmModel materialize(const ModelView& view);

}  // namespace wtp::svm
