#include "svm/smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wtp::svm {

namespace {

constexpr double kTau = 1e-12;  // curvature floor for non-PSD kernels

}  // namespace

QMatrix::QMatrix(const util::FeatureMatrix& data, KernelParams params,
                 double scale, std::size_t cache_bytes)
    : data_{&data},
      params_{params},
      scale_{scale},
      cache_{std::max<std::size_t>(1, data.rows()), cache_bytes} {
  if (data.empty()) throw std::invalid_argument{"QMatrix: empty training set"};
  const std::size_t l = data.rows();
  kernel_diag_.resize(l);
  diag_.resize(l);
  row_scratch_.resize(l);
  for (std::size_t i = 0; i < l; ++i) {
    kernel_diag_[i] = kernel_self(params_, data.sq_norm(i));
    diag_[i] = scale_ * kernel_diag_[i];
  }
}

std::span<const float> QMatrix::row(std::size_t i) {
  return cache_.get(i, [this](std::size_t r, std::span<float> out) {
    kernel_row(params_, *data_, r, row_scratch_);
    for (std::size_t j = 0; j < row_scratch_.size(); ++j) {
      out[j] = static_cast<float>(scale_ * row_scratch_[j]);
    }
  });
}

SolverResult solve_smo(QMatrix& q, std::span<const double> p,
                       double upper_bound, double alpha_sum,
                       const SolverConfig& config) {
  const std::size_t l = q.size();
  if (p.size() != l) {
    throw std::invalid_argument{"solve_smo: p size mismatch"};
  }
  if (upper_bound <= 0.0) {
    throw std::invalid_argument{"solve_smo: upper_bound must be > 0"};
  }
  if (alpha_sum < 0.0 || alpha_sum > upper_bound * static_cast<double>(l) * (1.0 + 1e-12)) {
    throw std::invalid_argument{
        "solve_smo: infeasible constraints (sum=" + std::to_string(alpha_sum) +
        ", U*l=" + std::to_string(upper_bound * static_cast<double>(l)) + ")"};
  }

  SolverResult result;
  result.alpha.assign(l, 0.0);
  auto& alpha = result.alpha;

  // Feasible start: fill greedily up to the bound (LibSVM's one-class init).
  double remaining = alpha_sum;
  for (std::size_t i = 0; i < l && remaining > 0.0; ++i) {
    const double take = std::min(upper_bound, remaining);
    alpha[i] = take;
    remaining -= take;
  }

  // Initial gradient G = Q*alpha + p.
  result.gradient.assign(p.begin(), p.end());
  auto& grad = result.gradient;
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha[i] > 0.0) {
      const auto qi = q.row(i);
      for (std::size_t j = 0; j < l; ++j) {
        grad[j] += alpha[i] * static_cast<double>(qi[j]);
      }
    }
  }

  const std::size_t max_iter =
      config.max_iter > 0
          ? config.max_iter
          : std::max<std::size_t>(10'000'000, 100 * l);

  const double bound_eps = upper_bound * 1e-12;
  auto is_upper = [&](std::size_t i) { return alpha[i] >= upper_bound - bound_eps; };
  auto is_lower = [&](std::size_t i) { return alpha[i] <= bound_eps; };

  std::size_t iter = 0;
  for (; iter < max_iter; ++iter) {
    // ---- working set selection (all labels +1) -------------------------
    // i = argmax_{alpha_i < U} -G_i  (the "up" direction)
    double g_max = -std::numeric_limits<double>::infinity();
    std::ptrdiff_t i_sel = -1;
    for (std::size_t t = 0; t < l; ++t) {
      if (!is_upper(t) && -grad[t] > g_max) {
        g_max = -grad[t];
        i_sel = static_cast<std::ptrdiff_t>(t);
      }
    }
    // M = min_{alpha_j > 0} -G_j  (the "down" direction)
    double g_min = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < l; ++t) {
      if (!is_lower(t)) g_min = std::min(g_min, -grad[t]);
    }
    if (i_sel < 0 || g_max - g_min < config.eps) {
      result.converged = true;
      break;
    }
    const auto i = static_cast<std::size_t>(i_sel);
    const auto qi = q.row(i);

    // Second-order choice of j among the violating "down" candidates:
    // maximize b^2 / a with b = G_j - G_i > 0, a = Qii + Qjj - 2 Qij.
    std::ptrdiff_t j_sel = -1;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < l; ++t) {
      if (is_lower(t)) continue;
      const double b = g_max + grad[t];  // = (-G_i) - (-G_t)
      if (b <= 0.0) continue;
      double a = q.diag(i) + q.diag(t) - 2.0 * static_cast<double>(qi[t]);
      if (a <= 0.0) a = kTau;
      const double gain = (b * b) / a;
      if (gain > best_gain) {
        best_gain = gain;
        j_sel = static_cast<std::ptrdiff_t>(t);
      }
    }
    if (j_sel < 0) {
      result.converged = true;  // numerical corner: no admissible pair
      break;
    }
    const auto j = static_cast<std::size_t>(j_sel);
    const auto qj = q.row(j);

    // ---- analytic two-variable update ----------------------------------
    double a = q.diag(i) + q.diag(j) - 2.0 * static_cast<double>(qi[j]);
    if (a <= 0.0) a = kTau;
    const double b = -grad[i] + grad[j];
    double delta = b / a;  // move alpha_i up, alpha_j down
    delta = std::min(delta, upper_bound - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) {
      // Degenerate (bounds already tight): nothing to move; the pair will
      // not be selected again because gradients are unchanged, so bail out
      // rather than loop forever.
      result.converged = true;
      break;
    }
    alpha[i] += delta;
    alpha[j] -= delta;
    for (std::size_t t = 0; t < l; ++t) {
      grad[t] += delta * (static_cast<double>(qi[t]) - static_cast<double>(qj[t]));
    }
  }
  result.iterations = iter;

  // Objective 0.5 a^T Q a + p^T a = 0.5 * sum_i a_i (G_i + p_i).
  double objective = 0.0;
  for (std::size_t i = 0; i < l; ++i) {
    objective += alpha[i] * (grad[i] + p[i]);
  }
  result.objective = 0.5 * objective;
  return result;
}

}  // namespace wtp::svm
