#include "svm/smo_solver.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace wtp::svm {

namespace {

constexpr double kTau = 1e-12;  // curvature floor for non-PSD kernels

/// Publishes one solve's stats to the global registry, labeled by kernel.
/// Handles are resolved once per kernel type and cached (the registry keeps
/// them stable for process lifetime), so per-solve cost is a few relaxed
/// atomic adds plus one striped histogram record.
void publish_solver_stats(KernelType kernel, const SolverStats& stats,
                          double elapsed_ns) {
  struct Handles {
    obs::Counter* solves;
    obs::Counter* iterations;
    obs::Counter* shrink_events;
    obs::Counter* shrunk_variables;
    obs::Counter* reconstructions;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Timer* solve_time;
  };
  static constexpr std::size_t kKernelCount = 4;
  static std::array<Handles, kKernelCount> handles = [] {
    std::array<Handles, kKernelCount> out;
    obs::Registry& registry = obs::Registry::global();
    for (std::size_t k = 0; k < kKernelCount; ++k) {
      const obs::Label label{
          "kernel", std::string{to_string(static_cast<KernelType>(k))}};
      const std::span<const obs::Label> labels{&label, 1};
      out[k] = {&registry.counter("solver.solves", labels),
                &registry.counter("solver.iterations", labels),
                &registry.counter("solver.shrink_events", labels),
                &registry.counter("solver.shrunk_variables", labels),
                &registry.counter("solver.reconstructions", labels),
                &registry.counter("solver.cache_hits", labels),
                &registry.counter("solver.cache_misses", labels),
                &registry.timer("solver.solve", labels)};
    }
    return out;
  }();
  const Handles& h = handles[static_cast<std::size_t>(kernel) % kKernelCount];
  h.solves->add(1);
  h.iterations->add(stats.iterations);
  if (stats.shrink_events > 0) h.shrink_events->add(stats.shrink_events);
  if (stats.shrunk_variables > 0) h.shrunk_variables->add(stats.shrunk_variables);
  if (stats.reconstructions > 0) h.reconstructions->add(stats.reconstructions);
  if (stats.cache_hits > 0) h.cache_hits->add(stats.cache_hits);
  if (stats.cache_misses > 0) h.cache_misses->add(stats.cache_misses);
  h.solve_time->record_ns(elapsed_ns);
}

}  // namespace

QMatrix::QMatrix(const util::FeatureMatrix& data, KernelParams params,
                 double scale, std::size_t cache_bytes)
    : QMatrix{data, params, scale, cache_bytes, nullptr} {}

QMatrix::QMatrix(const util::FeatureMatrix& data, KernelParams params,
                 double scale, std::size_t cache_bytes,
                 std::shared_ptr<GramCache> gram)
    : data_{&data},
      params_{params},
      scale_{scale},
      cache_{std::max<std::size_t>(1, data.rows()), cache_bytes},
      gram_{std::move(gram)} {
  // Training always runs the exact transform tier: a relaxed-precision
  // process mode (WTP_TRANSFORM_MODE) must not change which support vectors
  // the solver converges to — relaxed is a scoring-time trade only.
  params_.transform = TransformMode::kExact;
  if (data.empty()) throw std::invalid_argument{"QMatrix: empty training set"};
  if (gram_ != nullptr && &gram_->data() != &data) {
    throw std::invalid_argument{"QMatrix: gram cache built over another matrix"};
  }
  const std::size_t l = data.rows();
  kernel_diag_.resize(l);
  diag_.resize(l);
  row_scratch_.resize(l);
  for (std::size_t i = 0; i < l; ++i) {
    kernel_diag_[i] = kernel_self(params_, data.sq_norm(i));
    diag_[i] = scale_ * kernel_diag_[i];
  }
}

std::span<const float> QMatrix::row(std::size_t i) {
  return cache_.get(i, [this](std::size_t r, std::span<float> out) {
    if (gram_ != nullptr) {
      gram_->row(r, row_scratch_);
      kernel_transform(params_, *data_, data_->sq_norm(r), row_scratch_);
    } else {
      kernel_row(params_, *data_, r, row_scratch_);
    }
    for (std::size_t j = 0; j < row_scratch_.size(); ++j) {
      out[j] = static_cast<float>(scale_ * row_scratch_[j]);
    }
  });
}

namespace {

/// Everything one solve needs; split out so the shrinking machinery
/// (selection, shrink pass, exact reconstruction) reads as small methods
/// over shared state instead of one 200-line loop body.
class SmoWorkspace {
 public:
  SmoWorkspace(QMatrix& q, std::span<const double> p, double upper_bound,
               const SolverConfig& config, SolverResult& result)
      : q_{q},
        p_{p},
        upper_{upper_bound},
        bound_eps_{upper_bound * 1e-12},
        eps_{config.eps},
        shrinking_{config.shrinking},
        alpha_{result.alpha},
        grad_{result.gradient},
        g_bar_{result.g_bar},
        stats_{result.stats} {
    const std::size_t l = q.size();
    active_.resize(l);
    std::iota(active_.begin(), active_.end(), std::size_t{0});
    if (shrinking_) g_bar_.assign(l, 0.0);
  }

  [[nodiscard]] bool is_upper(std::size_t i) const noexcept {
    return alpha_[i] >= upper_ - bound_eps_;
  }
  [[nodiscard]] bool is_lower(std::size_t i) const noexcept {
    return alpha_[i] <= bound_eps_;
  }
  [[nodiscard]] bool is_free(std::size_t i) const noexcept {
    return !is_upper(i) && !is_lower(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return p_.size(); }
  [[nodiscard]] std::size_t active_size() const noexcept {
    return active_.size();
  }

  /// Initial gradient G = Q alpha + p and (with shrinking) the bounded-part
  /// decomposition G_bar_i = U * sum_{j upper} Q_ij used for exact
  /// reconstruction later.
  void init_gradient() {
    grad_.assign(p_.begin(), p_.end());
    for (std::size_t j = 0; j < size(); ++j) {
      if (alpha_[j] <= 0.0) continue;
      const auto qj = q_.row(j);
      for (std::size_t t = 0; t < size(); ++t) {
        grad_[t] += alpha_[j] * static_cast<double>(qj[t]);
      }
      if (shrinking_ && is_upper(j)) {
        for (std::size_t t = 0; t < size(); ++t) {
          g_bar_[t] += upper_ * static_cast<double>(qj[t]);
        }
      }
    }
  }

  /// Gradient seeded from a previous solution of the same QMatrix:
  ///   G = G_seed + sum_{j: alpha_j changed} (alpha_j - seed_alpha_j) Q_j
  /// and, with shrinking, G_bar rescaled from the seed's bound (U_new/U_old
  /// maps U_old * sum_{j upper_old} onto the new bound) plus one row update
  /// per variable whose at-upper status changed.  On a path every touched
  /// row is cache-hot, so the cost is O(changed rows), not O(support rows).
  void init_gradient_from_seed(const WarmSeed& seed) {
    grad_.assign(seed.gradient.begin(), seed.gradient.end());
    for (std::size_t j = 0; j < size(); ++j) {
      const double delta = alpha_[j] - seed.alpha[j];
      if (delta == 0.0) continue;
      const auto qj = q_.row(j);
      for (std::size_t t = 0; t < size(); ++t) {
        grad_[t] += delta * static_cast<double>(qj[t]);
      }
    }
    if (!shrinking_) return;
    const double old_upper = seed.upper_bound;
    const double old_bound_eps = old_upper * 1e-12;
    const bool have_seed_bar = !seed.g_bar.empty();
    if (have_seed_bar) {
      const double ratio = upper_ / old_upper;
      for (std::size_t t = 0; t < size(); ++t) {
        g_bar_[t] = ratio * seed.g_bar[t];
      }
    }
    for (std::size_t j = 0; j < size(); ++j) {
      const bool was_upper =
          have_seed_bar && seed.alpha[j] >= old_upper - old_bound_eps;
      const bool now_upper = is_upper(j);
      if (was_upper == now_upper) continue;
      const double sign = now_upper ? upper_ : -upper_;
      const auto qj = q_.row(j);
      for (std::size_t t = 0; t < size(); ++t) {
        g_bar_[t] += sign * static_cast<double>(qj[t]);
      }
    }
  }

  struct Selection {
    std::ptrdiff_t i = -1;
    std::ptrdiff_t j = -1;
    double gap = 0.0;  ///< m(alpha) - M(alpha) over the active set
  };

  /// LibSVM WSS2 over the active set: i maximizes -G among non-upper
  /// variables, j maximizes the second-order gain among down-candidates.
  [[nodiscard]] Selection select_working_set() {
    Selection sel;
    double g_max = -std::numeric_limits<double>::infinity();
    for (const std::size_t t : active_) {
      if (!is_upper(t) && -grad_[t] > g_max) {
        g_max = -grad_[t];
        sel.i = static_cast<std::ptrdiff_t>(t);
      }
    }
    double g_min = std::numeric_limits<double>::infinity();
    for (const std::size_t t : active_) {
      if (!is_lower(t)) g_min = std::min(g_min, -grad_[t]);
    }
    sel.gap = g_max - g_min;
    if (sel.i < 0 || !(sel.gap >= eps_)) return sel;

    const auto i = static_cast<std::size_t>(sel.i);
    const auto qi = q_.row(i);
    double best_gain = -std::numeric_limits<double>::infinity();
    for (const std::size_t t : active_) {
      if (is_lower(t)) continue;
      const double b = g_max + grad_[t];  // = (-G_i) - (-G_t)
      if (b <= 0.0) continue;
      double a = q_.diag(i) + q_.diag(t) - 2.0 * static_cast<double>(qi[t]);
      if (a <= 0.0) a = kTau;
      const double gain = (b * b) / a;
      if (gain > best_gain) {
        best_gain = gain;
        sel.j = static_cast<std::ptrdiff_t>(t);
      }
    }
    return sel;
  }

  /// Analytic two-variable update on the selected pair; returns false on
  /// the degenerate no-movement corner.
  [[nodiscard]] bool update_pair(std::size_t i, std::size_t j) {
    const auto qi = q_.row(i);
    const auto qj = q_.row(j);
    double a = q_.diag(i) + q_.diag(j) - 2.0 * static_cast<double>(qi[j]);
    if (a <= 0.0) a = kTau;
    const double b = -grad_[i] + grad_[j];
    double delta = b / a;  // move alpha_i up, alpha_j down
    delta = std::min(delta, upper_ - alpha_[i]);
    delta = std::min(delta, alpha_[j]);
    if (delta <= 0.0) return false;

    const bool i_was_upper = is_upper(i);
    const bool j_was_upper = is_upper(j);
    alpha_[i] += delta;
    alpha_[j] -= delta;
    for (const std::size_t t : active_) {
      grad_[t] +=
          delta * (static_cast<double>(qi[t]) - static_cast<double>(qj[t]));
    }
    if (shrinking_) {
      // Keep G_bar exact across bound crossings (full-length rows; the
      // crossings are rare relative to iterations).
      if (i_was_upper != is_upper(i)) {
        const double sign = is_upper(i) ? upper_ : -upper_;
        for (std::size_t t = 0; t < size(); ++t) {
          g_bar_[t] += sign * static_cast<double>(qi[t]);
        }
      }
      if (j_was_upper != is_upper(j)) {
        const double sign = is_upper(j) ? upper_ : -upper_;
        for (std::size_t t = 0; t < size(); ++t) {
          g_bar_[t] += sign * static_cast<double>(qj[t]);
        }
      }
    }
    return true;
  }

  /// One shrink pass (LibSVM do_shrinking): when the active gap first drops
  /// under 10*eps, unshrink once (exact reconstruction, full active set);
  /// then drop every bounded variable strongly on the right side of its KKT
  /// condition.  Active order stays ascending so working-set tie-breaks
  /// match the unshrunk reference scan.
  void shrink() {
    double m = -std::numeric_limits<double>::infinity();
    double big_m = std::numeric_limits<double>::infinity();
    for (const std::size_t t : active_) {
      if (!is_upper(t)) m = std::max(m, -grad_[t]);
      if (!is_lower(t)) big_m = std::min(big_m, -grad_[t]);
    }
    if (!unshrunk_ && m - big_m <= eps_ * 10.0) {
      unshrunk_ = true;
      reconstruct_gradient();
      reset_active();
      return;
    }
    const std::size_t before = active_.size();
    std::erase_if(active_, [&](std::size_t t) {
      if (is_upper(t)) return -grad_[t] > m;
      if (is_lower(t)) return -grad_[t] < big_m;
      return false;
    });
    if (active_.size() < before) {
      ++stats_.shrink_events;
      stats_.shrunk_variables += before - active_.size();
    }
  }

  /// Exact reconstruction of the stale (inactive) gradient entries:
  ///   G_i = G_bar_i + p_i + sum_{j free} alpha_j Q_ij.
  /// Upper-bounded contributions live in G_bar, zero variables contribute
  /// nothing, so only free rows are touched (and they are cache-hot).
  void reconstruct_gradient() {
    if (active_.size() == size()) return;
    ++stats_.reconstructions;
    std::vector<char> active_mask(size(), 0);
    for (const std::size_t t : active_) active_mask[t] = 1;
    for (std::size_t t = 0; t < size(); ++t) {
      if (!active_mask[t]) grad_[t] = g_bar_[t] + p_[t];
    }
    for (std::size_t j = 0; j < size(); ++j) {
      if (!is_free(j)) continue;
      const auto qj = q_.row(j);
      const double aj = alpha_[j];
      for (std::size_t t = 0; t < size(); ++t) {
        if (!active_mask[t]) grad_[t] += aj * static_cast<double>(qj[t]);
      }
    }
  }

  void reset_active() {
    active_.resize(size());
    std::iota(active_.begin(), active_.end(), std::size_t{0});
  }

 private:
  QMatrix& q_;
  std::span<const double> p_;
  const double upper_;
  const double bound_eps_;
  const double eps_;
  const bool shrinking_;
  std::vector<double>& alpha_;
  std::vector<double>& grad_;
  std::vector<double>& g_bar_;  // U * sum_{j upper} Q_ij, full length
  SolverStats& stats_;
  std::vector<std::size_t> active_;
  bool unshrunk_ = false;
};

/// Deterministic projection of a warm start onto the feasible set: clip to
/// [0, U]; scale down a surplus (stays in-bounds), or fill a deficit into
/// headroom in ascending index order (mirrors the cold greedy fill).
void project_warm_start(std::span<const double> warm_start, double upper_bound,
                        double alpha_sum, std::vector<double>& alpha) {
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    alpha[i] = std::clamp(warm_start[i], 0.0, upper_bound);
    sum += alpha[i];
  }
  if (sum > alpha_sum) {
    // Drain the surplus from the smallest coefficients first (ties by
    // index): on a descending regularizer path the marginal, small-alpha
    // vectors are the ones that leave the solution, while uniformly scaling
    // everything down would free every at-bound variable and destroy the
    // seed's bound structure.
    std::vector<std::size_t> order(alpha.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return alpha[a] != alpha[b] ? alpha[a] < alpha[b] : a < b;
    });
    double surplus = sum - alpha_sum;
    for (const std::size_t i : order) {
      if (surplus <= 0.0) break;
      const double take = std::min(alpha[i], surplus);
      alpha[i] -= take;
      surplus -= take;
    }
  } else if (sum < alpha_sum) {
    double deficit = alpha_sum - sum;
    for (std::size_t i = 0; i < alpha.size() && deficit > 0.0; ++i) {
      const double take = std::min(upper_bound - alpha[i], deficit);
      alpha[i] += take;
      deficit -= take;
    }
  }
}

SolverResult solve_smo_impl(QMatrix& q, std::span<const double> p,
                            double upper_bound, double alpha_sum,
                            const SolverConfig& config,
                            std::span<const double> warm_start,
                            const WarmSeed* seed) {
  const std::size_t l = q.size();
  if (p.size() != l) {
    throw std::invalid_argument{"solve_smo: p size mismatch"};
  }
  if (upper_bound <= 0.0) {
    throw std::invalid_argument{"solve_smo: upper_bound must be > 0"};
  }
  if (alpha_sum < 0.0 || alpha_sum > upper_bound * static_cast<double>(l) * (1.0 + 1e-12)) {
    throw std::invalid_argument{
        "solve_smo: infeasible constraints (sum=" + std::to_string(alpha_sum) +
        ", U*l=" + std::to_string(upper_bound * static_cast<double>(l)) + ")"};
  }
  if (!warm_start.empty() && warm_start.size() != l) {
    throw std::invalid_argument{"solve_smo: warm_start size mismatch"};
  }

  const obs::TraceSpan span{"svm.solve", "svm",
                            static_cast<std::uint64_t>(l)};
  const util::Stopwatch stopwatch;
  const std::size_t hits_before = q.cache_hits();
  const std::size_t misses_before = q.cache_misses();

  SolverResult result;
  result.alpha.assign(l, 0.0);
  auto& alpha = result.alpha;

  if (warm_start.empty()) {
    // Feasible start: fill greedily up to the bound (LibSVM's one-class init).
    double remaining = alpha_sum;
    for (std::size_t i = 0; i < l && remaining > 0.0; ++i) {
      const double take = std::min(upper_bound, remaining);
      alpha[i] = take;
      remaining -= take;
    }
  } else {
    project_warm_start(warm_start, upper_bound, alpha_sum, alpha);
  }

  SmoWorkspace ws{q, p, upper_bound, config, result};
  if (seed != nullptr) {
    ws.init_gradient_from_seed(*seed);
  } else {
    ws.init_gradient();
  }
  auto& grad = result.gradient;

  const std::size_t max_iter =
      config.max_iter > 0
          ? config.max_iter
          : std::max<std::size_t>(10'000'000, 100 * l);
  const std::size_t shrink_interval =
      config.shrink_interval > 0 ? config.shrink_interval
                                 : std::min<std::size_t>(l, 1000);

  std::size_t shrink_counter = shrink_interval;
  std::size_t iter = 0;
  for (; iter < max_iter; ++iter) {
    if (config.shrinking && --shrink_counter == 0) {
      shrink_counter = shrink_interval;
      ws.shrink();
    }

    auto sel = ws.select_working_set();
    if (sel.i < 0 || sel.gap < config.eps) {
      if (ws.active_size() == ws.size()) {
        result.stats.converged = true;
        break;
      }
      // Converged only on the shrunk problem: rebuild the exact full
      // gradient and re-check optimality over every variable.  LibSVM's
      // counter-of-1 forces an immediate re-shrink if work remains.
      ws.reconstruct_gradient();
      ws.reset_active();
      shrink_counter = 1;
      sel = ws.select_working_set();
      if (sel.i < 0 || sel.gap < config.eps) {
        result.stats.converged = true;
        break;
      }
    }
    if (sel.j < 0) {
      result.stats.converged = true;  // numerical corner: no admissible pair
      break;
    }
    if (!ws.update_pair(static_cast<std::size_t>(sel.i),
                        static_cast<std::size_t>(sel.j))) {
      // Degenerate (bounds already tight): nothing to move; the pair will
      // not be selected again because gradients are unchanged, so bail out
      // rather than loop forever.
      result.stats.converged = true;
      break;
    }
  }
  result.stats.iterations = iter;

  // Any exit while shrunk (max_iter, degenerate pair) must still hand back
  // the true full gradient: rho/R and the objective are computed from it.
  ws.reconstruct_gradient();

  // Objective 0.5 a^T Q a + p^T a = 0.5 * sum_i a_i (G_i + p_i).
  double objective = 0.0;
  for (std::size_t i = 0; i < l; ++i) {
    objective += alpha[i] * (grad[i] + p[i]);
  }
  result.objective = 0.5 * objective;

  result.stats.cache_hits = q.cache_hits() - hits_before;
  result.stats.cache_misses = q.cache_misses() - misses_before;
  publish_solver_stats(q.params().type, result.stats,
                       stopwatch.elapsed_seconds() * 1e9);
  return result;
}

}  // namespace

SolverResult solve_smo(QMatrix& q, std::span<const double> p,
                       double upper_bound, double alpha_sum,
                       const SolverConfig& config,
                       std::span<const double> warm_start) {
  return solve_smo_impl(q, p, upper_bound, alpha_sum, config, warm_start,
                        nullptr);
}

SolverResult solve_smo(QMatrix& q, std::span<const double> p,
                       double upper_bound, double alpha_sum,
                       const SolverConfig& config, const WarmSeed& seed) {
  const std::size_t l = q.size();
  if (seed.alpha.size() != l || seed.gradient.size() != l ||
      (!seed.g_bar.empty() && seed.g_bar.size() != l)) {
    throw std::invalid_argument{"solve_smo: warm seed size mismatch"};
  }
  if (seed.upper_bound <= 0.0) {
    throw std::invalid_argument{"solve_smo: warm seed upper_bound must be > 0"};
  }
  return solve_smo_impl(q, p, upper_bound, alpha_sum, config, seed.alpha,
                        &seed);
}

}  // namespace wtp::svm
