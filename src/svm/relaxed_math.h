// Relaxed-precision exp/tanh (DESIGN §14): the in-repo approximations
// behind WTP_TRANSFORM_MODE=relaxed.  These trade the libm bit-identity
// contract for vectorizability; the SIMD stamps in transform_backends.cpp
// run the same algorithm eight (or four) lanes at a time with FMA.
//
// Accuracy contract (verified by tests/svm/transform_test.cpp and measured
// by bench/kernel_throughput's relaxed section):
//
//   relaxed_exp   <= 4 ULP of std::exp on [-708, 709] (normal outputs);
//                 subnormal outputs (x < ~-708.4) may double-round once
//                 through the two-step 2^k scaling on the non-AVX-512
//                 paths, which the AVX-512 stamp's vscalefpd avoids.
//   relaxed_tanh  <= 8 ULP of std::tanh everywhere (the 1 - 2s/(1+s)
//                 branch amplifies the exp error by at most ~5x near the
//                 0.35 cutover).
//
// Specials follow libm: exp(NaN)=NaN (payload not preserved), exp(-inf)=0,
// exp(+inf)=inf; tanh(NaN)=NaN, tanh(±inf)=±1, tanh(±0)=±0.
//
// Algorithm (classic Cody–Waite + Taylor, no lookup tables so the SIMD
// stamps need no gathers):
//
//   exp:  k = nearbyint(x·log2 e);  r = x - k·ln2_hi - k·ln2_lo
//         exp(r) = Σ_{i<=13} r^i/i!   (|r| <= ln2/2, tail < 0.1 ULP)
//         result = 2^k · exp(r)       (two-step exponent build, or
//                                      vscalefpd on AVX-512)
//   tanh: |x| <  0.35  →  u = 2|x|, em1 = u·Σ u^i/(i+1)!  (expm1, no
//                         cancellation), tanh = em1/(em1+2)
//         |x| >= 0.35  →  s = exp(-2|x|), tanh = 1 - 2s/(1+s)
//         sign restored with copysign; s underflows to 0 for large |x|,
//         so the ±1 saturation needs no separate branch on SIMD paths.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace wtp::svm::detail {

inline constexpr double kRelaxedLog2e = 1.44269504088896340736;
/// ln 2 split so k*ln2_hi is exact for |k| < 2^11 (Cody–Waite).
inline constexpr double kRelaxedLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kRelaxedLn2Lo = 1.90821492927058770002e-10;
/// exp() overflows above, underflows (to zero) below.
inline constexpr double kRelaxedExpHi = 709.782712893384;
inline constexpr double kRelaxedExpLo = -745.2;
/// Taylor 1/i! for exp(r), |r| <= ln2/2; Horner from c13 down.
inline constexpr double kRelaxedExpC[14] = {
    1.0,                        // 1/0!
    1.0,                        // 1/1!
    1.0 / 2,                    // 1/2!
    1.0 / 6,                    // 1/3!
    1.0 / 24,                   // 1/4!
    1.0 / 120,                  // 1/5!
    1.0 / 720,                  // 1/6!
    1.0 / 5040,                 // 1/7!
    1.0 / 40320,                // 1/8!
    1.0 / 362880,               // 1/9!
    1.0 / 3628800,              // 1/10!
    1.0 / 39916800,             // 1/11!
    1.0 / 479001600,            // 1/12!
    1.0 / 6227020800.0,         // 1/13!
};
/// Taylor 1/(i+1)! for expm1(u)/u, |u| <= 0.7; Horner from c15 down.
inline constexpr double kRelaxedExpm1C[16] = {
    1.0,                        // 1/1!
    1.0 / 2,                    // 1/2!
    1.0 / 6,                    // 1/3!
    1.0 / 24,                   // 1/4!
    1.0 / 120,                  // 1/5!
    1.0 / 720,                  // 1/6!
    1.0 / 5040,                 // 1/7!
    1.0 / 40320,                // 1/8!
    1.0 / 362880,               // 1/9!
    1.0 / 3628800,              // 1/10!
    1.0 / 39916800,             // 1/11!
    1.0 / 479001600,            // 1/12!
    1.0 / 6227020800.0,         // 1/13!
    1.0 / 87178291200.0,        // 1/14!
    1.0 / 1307674368000.0,      // 1/15!
    1.0 / 20922789888000.0,     // 1/16!
};
/// tanh cutover between the expm1 and exp branches.
inline constexpr double kRelaxedTanhSmall = 0.35;

/// 2^k for integer k in [-1075, 1025]: two-step exponent build so each
/// factor stays a normal power of two even when the product is subnormal.
/// Two multiplies double-round once in the subnormal range — covered by the
/// documented bound above.
inline double relaxed_exp2i(double value, int k) {
  const int k1 = k >> 1;
  const int k2 = k - k1;
  const double s1 =
      std::bit_cast<double>(static_cast<std::uint64_t>(k1 + 1023) << 52);
  const double s2 =
      std::bit_cast<double>(static_cast<std::uint64_t>(k2 + 1023) << 52);
  return (value * s1) * s2;
}

/// Scalar stamp of the relaxed exp.  The SIMD stamps mirror this with FMA
/// in the Horner chain, so lane results may differ from this by ~1 ULP.
inline double relaxed_exp(double x) {
  if (std::isnan(x)) return x;
  if (x > kRelaxedExpHi) return std::numeric_limits<double>::infinity();
  if (x < kRelaxedExpLo) return 0.0;
  const double k = std::nearbyint(x * kRelaxedLog2e);
  double r = x - k * kRelaxedLn2Hi;
  r = r - k * kRelaxedLn2Lo;
  double p = kRelaxedExpC[13];
  for (int i = 12; i >= 0; --i) p = p * r + kRelaxedExpC[i];
  return relaxed_exp2i(p, static_cast<int>(k));
}

/// Scalar stamp of the relaxed tanh (see header comment for the split).
inline double relaxed_tanh(double x) {
  if (std::isnan(x)) return x;
  const double a = std::fabs(x);
  double result;
  if (a < kRelaxedTanhSmall) {
    const double u = 2.0 * a;
    double q = kRelaxedExpm1C[15];
    for (int i = 14; i >= 0; --i) q = q * u + kRelaxedExpm1C[i];
    const double em1 = u * q;
    result = em1 / (em1 + 2.0);
  } else {
    const double s = relaxed_exp(-2.0 * a);
    result = 1.0 - 2.0 * s / (1.0 + s);
  }
  return std::copysign(result, x);
}

}  // namespace wtp::svm::detail
