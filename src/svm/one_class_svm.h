// nu-One-Class SVM (Schölkopf et al. 2001; paper §II-A).
//
// Separates the training data from the origin by a maximum-margin
// hyperplane in feature space.  nu upper-bounds the fraction of training
// outliers and lower-bounds the fraction of support vectors.  The dual
// (paper eq. 5) is solved by the generic SMO solver with Q = K, p = 0,
// bounds [0, 1] after rescaling alpha by nu*l, sum(alpha) = nu*l.
//
// (LibSVM scales the same dual so that sum(alpha) = 1, U = 1/(nu l); the
// decision function is identical up to that constant factor.  We keep the
// paper's normalization.)
//
// Training consumes a util::FeatureMatrix (the canonical CSR data plane);
// the trained support-vector set is kept as a compact owned FeatureMatrix
// block so decision functions stream SVs contiguously through the batch
// kernel path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "svm/kernel.h"
#include "svm/smo_solver.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::svm {

struct OneClassSvmConfig {
  double nu = 0.5;            ///< in (0, 1]
  KernelParams kernel;        ///< gamma <= 0 resolves to 1/dimension
  double eps = 1e-3;          ///< SMO stopping tolerance
  std::size_t cache_bytes = std::size_t{32} << 20;
  bool shrinking = true;      ///< SolverConfig::shrinking passthrough
  std::size_t shrink_interval = 0;  ///< SolverConfig::shrink_interval passthrough
  /// Optional dot-row cache shared across the kernel columns of one grid
  /// sweep (must be built over the same training matrix).  Null = none.
  std::shared_ptr<GramCache> gram_cache;
};

/// Trained model: decision f(x) = sum_i alpha_i k(sv_i, x) - rho  (eq. 6);
/// x is accepted when f(x) >= 0.
class OneClassSvmModel {
 public:
  /// Trains on the user's window matrix.  `dimension` is the feature-space
  /// dimension (used only to resolve gamma="auto").  Throws
  /// std::invalid_argument on empty data or nu outside (0, 1].
  [[nodiscard]] static OneClassSvmModel train(const util::FeatureMatrix& data,
                                              const OneClassSvmConfig& config,
                                              std::size_t dimension);
  /// Convenience: builds the matrix from a span of SparseVectors first.
  [[nodiscard]] static OneClassSvmModel train(
      std::span<const util::SparseVector> data, const OneClassSvmConfig& config,
      std::size_t dimension);

  /// Warm-started regularizer path: trains one model per nu in `nus` (in
  /// the given order) for the fixed kernel of `config`, sharing a single
  /// QMatrix — and therefore one hot kernel-row cache — across the whole
  /// sweep, and seeding each solve from the previous cell's alpha projected
  /// onto the new feasible set (sum nu*l).  Returns models aligned with
  /// `nus`; `config.nu` is ignored.  Per-cell solver statistics and the
  /// shared cache totals land in `*stats` when given.
  [[nodiscard]] static std::vector<OneClassSvmModel> fit_path(
      const util::FeatureMatrix& data, const OneClassSvmConfig& config,
      std::span<const double> nus, std::size_t dimension,
      PathStats* stats = nullptr);

  /// Reconstructs a model from persisted parts (model_io).
  [[nodiscard]] static OneClassSvmModel from_parts(
      KernelParams kernel, util::FeatureMatrix support_vectors,
      std::vector<double> coefficients, double rho);
  [[nodiscard]] static OneClassSvmModel from_parts(
      KernelParams kernel, std::vector<util::SparseVector> support_vectors,
      std::vector<double> coefficients, double rho);

  [[nodiscard]] double decision_value(const util::SparseVector& x) const;
  /// Variant with the query's squared norm precomputed by the caller (it is
  /// needed once per scored vector, not once per kernel evaluation).
  [[nodiscard]] double decision_value(const util::SparseVector& x,
                                      double x_sqnorm) const;
  /// Batch: decision value of every row of `queries`, written to `out`.
  void decision_values(const util::FeatureMatrix& queries,
                       std::span<double> out) const;
  [[nodiscard]] bool accepts(const util::SparseVector& x) const {
    return decision_value(x) >= 0.0;
  }

  /// The support-vector set as an owned CSR block.
  [[nodiscard]] const util::FeatureMatrix& support_vectors() const noexcept {
    return support_vectors_;
  }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coefficients_;
  }
  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] const KernelParams& kernel() const noexcept { return kernel_; }
  /// Fraction of training points with alpha at the upper bound (outliers);
  /// bounded above by nu.
  [[nodiscard]] double bounded_fraction() const noexcept { return bounded_fraction_; }
  /// Instrumentation of the SMO solve that produced this model (zeros for
  /// models reconstructed via from_parts).
  [[nodiscard]] const SolverStats& solver_stats() const noexcept {
    return solver_stats_;
  }

 private:
  OneClassSvmModel() = default;

  static OneClassSvmModel from_solution(const util::FeatureMatrix& data,
                                        const KernelParams& kernel,
                                        const SolverResult& solved);

  KernelParams kernel_;
  util::FeatureMatrix support_vectors_;
  std::vector<double> coefficients_;  ///< alpha_i > 0, aligned with SV rows
  double rho_ = 0.0;
  double bounded_fraction_ = 0.0;
  SolverStats solver_stats_;
};

/// Shared helper: rho such that free SVs sit on the boundary.  `gradient`
/// and `alpha` are solver outputs; rho = mean gradient over free vectors,
/// or the midpoint of the KKT bounds when none are free.
[[nodiscard]] double compute_rho(std::span<const double> alpha,
                                 std::span<const double> gradient,
                                 double upper_bound);

}  // namespace wtp::svm
