#include "svm/svdd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/trace.h"
#include "svm/smo_solver.h"

namespace wtp::svm {

std::vector<SvddModel> SvddModel::fit_path(const util::FeatureMatrix& data,
                                           const SvddConfig& config,
                                           std::span<const double> cs,
                                           std::size_t dimension,
                                           PathStats* stats) {
  if (data.empty()) {
    throw std::invalid_argument{"SvddModel::fit_path: empty training set"};
  }
  for (const double c : cs) {
    if (c <= 0.0 || c > 1.0) {
      throw std::invalid_argument{"SvddModel::fit_path: c must be in (0, 1]"};
    }
  }
  KernelParams kernel = config.kernel;
  if (kernel.gamma <= 0.0) {
    kernel.gamma = 1.0 / static_cast<double>(std::max<std::size_t>(1, dimension));
  }
  const obs::TraceSpan path_span{"svm.fit_path", "svm",
                                 static_cast<std::uint64_t>(cs.size())};
  obs::Registry::global().counter("solver.path_columns").add(1);

  const std::size_t l = data.rows();

  QMatrix q{data, kernel, /*scale=*/2.0, config.cache_bytes, config.gram_cache};
  std::vector<double> p(l);
  for (std::size_t i = 0; i < l; ++i) p[i] = -q.kernel_diag(i);

  SolverConfig solver_config;
  solver_config.eps = config.eps;
  solver_config.shrinking = config.shrinking;
  solver_config.shrink_interval = config.shrink_interval;

  std::vector<SvddModel> models;
  models.reserve(cs.size());
  SolverResult previous;
  double previous_c = 0.0;
  for (const double c : cs) {
    // sum(alpha) = 1 with alpha_i <= C requires C*l >= 1.
    const double effective_c = std::max(c, 1.0 / static_cast<double>(l));
    // Subsequent cells seed from the previous solution (alpha, gradient and
    // G_bar), so the solver pays only for what the projection changed.
    SolverResult solved =
        previous.alpha.empty()
            ? solve_smo(q, p, effective_c, /*alpha_sum=*/1.0, solver_config)
            : solve_smo(q, p, effective_c, /*alpha_sum=*/1.0, solver_config,
                        WarmSeed{previous.alpha, previous.gradient,
                                 previous.g_bar, previous_c});
    if (stats != nullptr) stats->cells.push_back(solved.stats);
    models.push_back(from_solution(data, kernel, effective_c, q, solved));
    previous = std::move(solved);
    previous_c = effective_c;
  }
  if (stats != nullptr) {
    stats->cache_hits = q.cache_hits();
    stats->cache_misses = q.cache_misses();
  }
  return models;
}

SvddModel SvddModel::train(const util::FeatureMatrix& data,
                           const SvddConfig& config, std::size_t dimension) {
  if (config.c <= 0.0 || config.c > 1.0) {
    throw std::invalid_argument{"SvddModel::train: c must be in (0, 1]"};
  }
  if (data.empty()) {
    throw std::invalid_argument{"SvddModel::train: empty training set"};
  }
  const double c[] = {config.c};
  return std::move(fit_path(data, config, c, dimension).front());
}

SvddModel SvddModel::from_solution(const util::FeatureMatrix& data,
                                   const KernelParams& kernel,
                                   double effective_c, const QMatrix& q,
                                   const SolverResult& solved) {
  const std::size_t l = data.rows();
  // Geometry terms.  With G_i = 2 (K alpha)_i - K_ii:
  //   alpha^T K alpha = sum_i alpha_i (G_i + K_ii) / 2
  //   squared distance of x_i to center: r_i = K_ii - 2 (K alpha)_i + aKa
  //                                          = -G_i + aKa
  // Free SVs sit on the sphere, so R^2 = aKa - mean(G_free); with no free
  // SVs, R^2 is the KKT midpoint (inside points have r_i <= R^2 <= outside).
  double alpha_k_alpha = 0.0;
  for (std::size_t i = 0; i < l; ++i) {
    alpha_k_alpha += solved.alpha[i] * (solved.gradient[i] + q.kernel_diag(i)) / 2.0;
  }
  const double bound_eps = effective_c * 1e-12;
  double free_sum = 0.0;
  std::size_t free_count = 0;
  double inside_max = -std::numeric_limits<double>::infinity();  // r_i, alpha=0
  double outside_min = std::numeric_limits<double>::infinity();  // r_i, alpha=C
  for (std::size_t i = 0; i < l; ++i) {
    const double r_i = -solved.gradient[i] + alpha_k_alpha;
    if (solved.alpha[i] <= bound_eps) {
      inside_max = std::max(inside_max, r_i);
    } else if (solved.alpha[i] >= effective_c - bound_eps) {
      outside_min = std::min(outside_min, r_i);
    } else {
      free_sum += r_i;
      ++free_count;
    }
  }
  double r_squared = 0.0;
  if (free_count > 0) {
    r_squared = free_sum / static_cast<double>(free_count);
  } else if (std::isinf(inside_max) && std::isinf(outside_min)) {
    r_squared = 0.0;
  } else if (std::isinf(inside_max)) {
    r_squared = outside_min;
  } else if (std::isinf(outside_min)) {
    r_squared = inside_max;
  } else {
    r_squared = 0.5 * (inside_max + outside_min);
  }

  SvddModel model;
  model.kernel_ = kernel;
  model.effective_c_ = effective_c;
  model.r_squared_ = r_squared;
  model.alpha_k_alpha_ = alpha_k_alpha;
  model.solver_stats_ = solved.stats;
  util::FeatureMatrixBuilder svs;
  for (std::size_t i = 0; i < l; ++i) {
    if (solved.alpha[i] > 1e-12) {
      svs.add_row(data, i);
      model.coefficients_.push_back(solved.alpha[i]);
    }
  }
  model.support_vectors_ = svs.build(data.cols());
  if (kernel_dispatch() != nullptr) {
    if (const auto* bitset = data.bitset()) {
      model.support_vectors_.ensure_bitset(bitset->view().numeric_cols);
    }
  }
  return model;
}

SvddModel SvddModel::train(std::span<const util::SparseVector> data,
                           const SvddConfig& config, std::size_t dimension) {
  return train(util::FeatureMatrix::from_rows(data), config, dimension);
}

SvddModel SvddModel::from_parts(KernelParams kernel,
                                util::FeatureMatrix support_vectors,
                                std::vector<double> coefficients,
                                double r_squared, double alpha_k_alpha) {
  if (support_vectors.rows() != coefficients.size()) {
    throw std::invalid_argument{"SvddModel::from_parts: SV/coefficient size mismatch"};
  }
  SvddModel model;
  model.kernel_ = kernel;
  model.support_vectors_ = std::move(support_vectors);
  model.coefficients_ = std::move(coefficients);
  model.r_squared_ = r_squared;
  model.alpha_k_alpha_ = alpha_k_alpha;
  return model;
}

SvddModel SvddModel::from_parts(KernelParams kernel,
                                std::vector<util::SparseVector> support_vectors,
                                std::vector<double> coefficients,
                                double r_squared, double alpha_k_alpha) {
  return from_parts(kernel, util::FeatureMatrix::from_rows(support_vectors),
                    std::move(coefficients), r_squared, alpha_k_alpha);
}

double SvddModel::squared_distance_to_center(const util::SparseVector& x) const {
  return squared_distance_to_center(x, x.squared_norm());
}

double SvddModel::squared_distance_to_center(const util::SparseVector& x,
                                             double x_sqnorm) const {
  const auto k = kernel_row_scratch(support_vectors_.rows());
  kernel_row(kernel_, support_vectors_, x, x_sqnorm, k);
  double cross = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) cross += coefficients_[i] * k[i];
  const double k_xx = kernel_self(kernel_, x_sqnorm);
  return k_xx - 2.0 * cross + alpha_k_alpha_;
}

double SvddModel::decision_value(const util::SparseVector& x) const {
  return r_squared_ - squared_distance_to_center(x);
}

double SvddModel::decision_value(const util::SparseVector& x,
                                 double x_sqnorm) const {
  return r_squared_ - squared_distance_to_center(x, x_sqnorm);
}

void SvddModel::decision_values(const util::FeatureMatrix& queries,
                                std::span<double> out) const {
  // Batched through kernel_block (see OneClassSvmModel::decision_values);
  // the per-query arithmetic is unchanged, so results are bit-identical.
  const std::size_t n = support_vectors_.rows();
  const std::size_t nq = queries.rows();
  constexpr std::size_t kQueryTile = 64;
  thread_local std::vector<double> block;
  if (block.size() < std::min(kQueryTile, nq) * n) {
    block.resize(std::min(kQueryTile, nq) * n);
  }
  for (std::size_t q0 = 0; q0 < nq; q0 += kQueryTile) {
    const std::size_t tile = std::min(kQueryTile, nq - q0);
    const std::span<double> k{block.data(), tile * n};
    kernel_block(kernel_, support_vectors_, queries, q0, tile, k);
    for (std::size_t t = 0; t < tile; ++t) {
      double cross = 0.0;
      for (std::size_t i = 0; i < n; ++i) cross += coefficients_[i] * k[t * n + i];
      const double k_xx = kernel_self(kernel_, queries.sq_norm(q0 + t));
      out[q0 + t] = r_squared_ - (k_xx - 2.0 * cross + alpha_k_alpha_);
    }
  }
}

}  // namespace wtp::svm
