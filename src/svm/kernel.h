// Kernel functions over sparse feature vectors (paper §II, eq. 2).
//
// The four kernels of the paper's grid search (Tab. III):
//   linear      k(x,y) = x.y
//   polynomial  k(x,y) = (gamma x.y + coef0)^degree
//   rbf         k(x,y) = exp(-gamma ||x-y||^2)      [paper: gamma = 1/C]
//   sigmoid     k(x,y) = tanh(gamma x.y + coef0)
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::svm {

enum class KernelType : std::uint8_t { kLinear, kPolynomial, kRbf, kSigmoid };

[[nodiscard]] std::string_view to_string(KernelType type) noexcept;
/// Throws std::runtime_error on unknown names.
[[nodiscard]] KernelType parse_kernel_type(std::string_view text);

struct KernelParams {
  KernelType type = KernelType::kRbf;
  /// gamma <= 0 means "auto": replaced by 1/dimension at training time.
  double gamma = 0.0;
  double coef0 = 0.0;
  int degree = 3;

  friend bool operator==(const KernelParams&, const KernelParams&) = default;
};

/// Evaluates k(x, y).  For RBF, the squared norms of x and y may be passed
/// to avoid recomputation (the solver precomputes them for all rows).
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y);
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y, double x_sqnorm,
                                 double y_sqnorm);

/// k(x, x): 1 for RBF, ||x||-dependent otherwise.
[[nodiscard]] double kernel_self(const KernelParams& params,
                                 const util::SparseVector& x);
/// k(x, x) from a cached squared norm (FeatureMatrix rows, scored queries).
[[nodiscard]] double kernel_self(const KernelParams& params, double sq_norm);

/// Batch kernel evaluation: one row of K against *all* rows of a
/// FeatureMatrix in a single pass.  The query is scattered into a dense
/// scratch once, every matrix row then streams contiguous CSR entries, and
/// the kernel transform is applied kernel-hoisted over the whole row.
/// Results are bit-identical to per-pair kernel_eval with cached norms.
/// `out` must hold matrix.rows() elements.
///
/// Query = row i of the matrix itself:
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::size_t i, std::span<double> out);
/// Query = an external vector with its squared norm precomputed (decision
/// functions: compute the query norm once per scored vector, not once per
/// kernel call):
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out);
/// Query = a CSR row borrowed from another matrix (batch scoring):
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);

/// Non-owning variants over a util::CsrView — the zero-copy path used by
/// memory-mapped support-vector blocks (model_io's blob plane).  Same
/// implementation as the FeatureMatrix overloads (which forward here), so
/// results are bit-identical regardless of who owns the rows.
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out);
void kernel_transform(const KernelParams& params, const util::CsrView& matrix,
                      double x_sqnorm, std::span<double> inout);

/// In-place kernel transform of a raw dot-product row: `inout[j]` holds
/// x . row_j on entry and k(x, row_j) on return.  This is the cheap scalar
/// tail of kernel_row — every grid-search kernel is such a transform of the
/// same Gram row, which is what lets a sweep share dot products across
/// kernels (GramCache).  Bit-identical to kernel_row given the same dots.
void kernel_transform(const KernelParams& params,
                      const util::FeatureMatrix& matrix, double x_sqnorm,
                      std::span<double> inout);

/// Thread-local scratch sized for one kernel row (one value per matrix
/// row), reused across decision-function calls on the same thread.
[[nodiscard]] std::span<double> kernel_row_scratch(std::size_t size);

/// Human-readable "rbf(gamma=0.25)" form for reports.
[[nodiscard]] std::string describe(const KernelParams& params);

}  // namespace wtp::svm
