// Kernel functions over sparse feature vectors (paper §II, eq. 2).
//
// The four kernels of the paper's grid search (Tab. III):
//   linear      k(x,y) = x.y
//   polynomial  k(x,y) = (gamma x.y + coef0)^degree
//   rbf         k(x,y) = exp(-gamma ||x-y||^2)      [paper: gamma = 1/C]
//   sigmoid     k(x,y) = tanh(gamma x.y + coef0)
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitset_view.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::svm {

enum class KernelType : std::uint8_t { kLinear, kPolynomial, kRbf, kSigmoid };

[[nodiscard]] std::string_view to_string(KernelType type) noexcept;
/// Throws std::runtime_error on unknown names.
[[nodiscard]] KernelType parse_kernel_type(std::string_view text);

struct KernelParams {
  KernelType type = KernelType::kRbf;
  /// gamma <= 0 means "auto": replaced by 1/dimension at training time.
  double gamma = 0.0;
  double coef0 = 0.0;
  int degree = 3;

  friend bool operator==(const KernelParams&, const KernelParams&) = default;
};

/// Evaluates k(x, y).  For RBF, the squared norms of x and y may be passed
/// to avoid recomputation (the solver precomputes them for all rows).
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y);
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y, double x_sqnorm,
                                 double y_sqnorm);

/// k(x, x): 1 for RBF, ||x||-dependent otherwise.
[[nodiscard]] double kernel_self(const KernelParams& params,
                                 const util::SparseVector& x);
/// k(x, x) from a cached squared norm (FeatureMatrix rows, scored queries).
[[nodiscard]] double kernel_self(const KernelParams& params, double sq_norm);

/// Batch kernel evaluation: one row of K against *all* rows of a
/// FeatureMatrix in a single pass.  The query is scattered into a dense
/// scratch once, every matrix row then streams contiguous CSR entries, and
/// the kernel transform is applied kernel-hoisted over the whole row.
/// Results are bit-identical to per-pair kernel_eval with cached norms.
/// `out` must hold matrix.rows() elements.
///
/// Query = row i of the matrix itself:
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::size_t i, std::span<double> out);
/// Query = an external vector with its squared norm precomputed (decision
/// functions: compute the query norm once per scored vector, not once per
/// kernel call):
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out);
/// Query = a CSR row borrowed from another matrix (batch scoring):
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);

/// Non-owning variants over a util::CsrView — the zero-copy path used by
/// memory-mapped support-vector blocks (model_io's blob plane).  Same
/// implementation as the FeatureMatrix overloads (which forward here), so
/// results are bit-identical regardless of who owns the rows.
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out);
void kernel_transform(const KernelParams& params, const util::CsrView& matrix,
                      double x_sqnorm, std::span<double> inout);

// ----------------------------------------------------------------------
// kernel_dispatch seam (DESIGN §11).
//
// When a matrix carries a bitset companion (util::BitsetStorage) and the
// query conforms to its layout, kernel_row/kernel_block compute the raw
// dots as AND+popcount through the backend selected here; otherwise they
// fall back to the scalar CSR path.  Both paths are bit-identical by
// construction (the combine replays the oracle's summation order), which
// the equivalence suites enforce.
//
// The backend is chosen once, at first use: the fastest of the compiled-in
// set the CPU supports (avx512 > avx2 > popcnt > scalar), overridable with
// WTP_KERNEL_BACKEND=<name>.  WTP_KERNEL_BACKEND=csr disables the bitset
// plane entirely (pure scalar CSR).  An unknown name throws at first
// dispatch; a known but unsupported name warns on stderr and falls back to
// the portable scalar backend.
// ----------------------------------------------------------------------

/// Active bitset backend, or nullptr when the bitset plane is disabled.
[[nodiscard]] const util::BitsetDotOps* kernel_dispatch();
/// Name of the active backend ("csr" when disabled).
[[nodiscard]] std::string_view kernel_backend_name();
/// Backend names this host can actually run (always contains "scalar").
[[nodiscard]] std::vector<std::string_view> supported_kernel_backends();
/// Forces a backend by name ("csr" disables the bitset plane; "" re-selects
/// from the environment).  Throws std::runtime_error on unknown or
/// unsupported names.  Test/bench hook — not thread-safe against concurrent
/// kernel calls.
void set_kernel_backend_for_testing(std::string_view name);

/// Multi-query batch: out[q * matrix.rows() + r] = k(query_q, row_r) for
/// every row of `queries` — the blocked mini-popcount-GEMM behind batched
/// decision functions.  Bit-identical to per-query kernel_row.  When both
/// matrices share a bitset layout (e.g. schema-derived via
/// FeatureMatrix::ensure_bitset) the query encodings are borrowed
/// zero-copy.  `out` must hold queries.rows() * matrix.rows() elements.
void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::span<double> out);
/// Query rows [query_begin, query_begin + query_count) only — lets callers
/// tile large query sets to bound the out-block (out needs query_count *
/// matrix.rows() elements).
void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::size_t query_begin,
                  std::size_t query_count, std::span<double> out);
/// Non-owning variant (mmap'd SV blocks): `matrix_bitset` may be null.
void kernel_block(const KernelParams& params, const util::CsrView& matrix,
                  const util::BitsetView* matrix_bitset,
                  const util::CsrView& queries,
                  const util::BitsetView* queries_bitset, std::span<double> out);

/// Bitset-aware variants of kernel_row over a raw CsrView (the mmap'd model
/// path): when `bitset` is non-null and the query conforms, dots go through
/// the dispatched backend.
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset, const util::SparseVector& x,
                double x_sqnorm, std::span<double> out);

/// Raw dots (no kernel transform) of every matrix row with a query, routed
/// through the bitset plane when possible.  Bit-identical to
/// FeatureMatrix::dot_all — the entry point for non-kernel consumers (kde
/// densities, knn distances, GramCache rows).
void dot_rows(const util::FeatureMatrix& matrix, const util::SparseVector& x,
              std::span<double> out);
void dot_rows(const util::FeatureMatrix& matrix, std::size_t i,
              std::span<double> out);

/// Reuses one query's bitset encoding across many matrices that share a
/// layout — the cascade's stage-4 survivors and exhaustive fan-outs score
/// one window against hundreds of per-user SV blocks whose layouts are
/// schema-identical, so the encode work is paid once, not per user.
class EncodedQueryCache {
 public:
  EncodedQueryCache(std::span<const std::uint32_t> query_indices,
                    std::span<const double> query_values) noexcept
      : indices_{query_indices}, values_{query_values} {}

  /// Encoding of the query against `layout`, or nullptr when the query does
  /// not conform (callers fall back to the CSR path).
  [[nodiscard]] const util::BitsetQuery* get(const util::BitsetView& layout);

 private:
  struct Entry {
    std::size_t cols;
    std::vector<std::uint32_t> numeric_cols;
    util::BitsetQuery query;
    bool ok;
  };
  std::span<const std::uint32_t> indices_;
  std::span<const double> values_;
  std::vector<Entry> entries_;
};

/// kernel_row with a shared encode cache (see EncodedQueryCache).
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out, EncodedQueryCache* cache);

/// In-place kernel transform of a raw dot-product row: `inout[j]` holds
/// x . row_j on entry and k(x, row_j) on return.  This is the cheap scalar
/// tail of kernel_row — every grid-search kernel is such a transform of the
/// same Gram row, which is what lets a sweep share dot products across
/// kernels (GramCache).  Bit-identical to kernel_row given the same dots.
void kernel_transform(const KernelParams& params,
                      const util::FeatureMatrix& matrix, double x_sqnorm,
                      std::span<double> inout);

/// Thread-local scratch sized for one kernel row (one value per matrix
/// row), reused across decision-function calls on the same thread.
///
/// Contract: the returned span is valid until the SAME thread's next call —
/// each call may grow (never shrink) one per-thread buffer and returns a
/// prefix of it, so a later call with a larger `size` can relocate the
/// memory behind spans handed out earlier on that thread.  Callers must not
/// hold a previous span across a call, and must not share the span with
/// other threads.  Growth preserves the prefix contents; elements past any
/// previously requested size are value-initialized (0.0).
[[nodiscard]] std::span<double> kernel_row_scratch(std::size_t size);

/// Human-readable "rbf(gamma=0.25)" form for reports.
[[nodiscard]] std::string describe(const KernelParams& params);

}  // namespace wtp::svm
