// Kernel functions over sparse feature vectors (paper §II, eq. 2).
//
// The four kernels of the paper's grid search (Tab. III):
//   linear      k(x,y) = x.y
//   polynomial  k(x,y) = (gamma x.y + coef0)^degree
//   rbf         k(x,y) = exp(-gamma ||x-y||^2)      [paper: gamma = 1/C]
//   sigmoid     k(x,y) = tanh(gamma x.y + coef0)
#pragma once

#include <string>
#include <string_view>

#include "util/sparse_vector.h"

namespace wtp::svm {

enum class KernelType : std::uint8_t { kLinear, kPolynomial, kRbf, kSigmoid };

[[nodiscard]] std::string_view to_string(KernelType type) noexcept;
/// Throws std::runtime_error on unknown names.
[[nodiscard]] KernelType parse_kernel_type(std::string_view text);

struct KernelParams {
  KernelType type = KernelType::kRbf;
  /// gamma <= 0 means "auto": replaced by 1/dimension at training time.
  double gamma = 0.0;
  double coef0 = 0.0;
  int degree = 3;

  friend bool operator==(const KernelParams&, const KernelParams&) = default;
};

/// Evaluates k(x, y).  For RBF, the squared norms of x and y may be passed
/// to avoid recomputation (the solver precomputes them for all rows).
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y);
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y, double x_sqnorm,
                                 double y_sqnorm);

/// k(x, x): 1 for RBF, ||x||-dependent otherwise.
[[nodiscard]] double kernel_self(const KernelParams& params,
                                 const util::SparseVector& x);

/// Human-readable "rbf(gamma=0.25)" form for reports.
[[nodiscard]] std::string describe(const KernelParams& params);

}  // namespace wtp::svm
