// Kernel functions over sparse feature vectors (paper §II, eq. 2).
//
// The four kernels of the paper's grid search (Tab. III):
//   linear      k(x,y) = x.y
//   polynomial  k(x,y) = (gamma x.y + coef0)^degree
//   rbf         k(x,y) = exp(-gamma ||x-y||^2)      [paper: gamma = 1/C]
//   sigmoid     k(x,y) = tanh(gamma x.y + coef0)
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitset_view.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::obs {
class Registry;
}  // namespace wtp::obs

namespace wtp::svm {

enum class KernelType : std::uint8_t { kLinear, kPolynomial, kRbf, kSigmoid };

[[nodiscard]] std::string_view to_string(KernelType type) noexcept;
/// Throws std::runtime_error on unknown names.
[[nodiscard]] KernelType parse_kernel_type(std::string_view text);

/// Precision tier of the batched kernel transform (DESIGN §14).
///
///   kExact   — std::exp/std::tanh per element in the oracle's expression
///              order; every output bit-identical to kernel_eval.  This is
///              the process default.
///   kRelaxed — in-repo vectorized exp/tanh (svm/relaxed_math.h) with a
///              documented max-ULP bound (exp <= 4, tanh <= 8).  Explicit
///              opt-in only: WTP_TRANSFORM_MODE=relaxed, EngineConfig, or
///              KernelParams::transform.  Scoring-tier only — training
///              (the SMO solver) always pins kExact so models are
///              reproducible regardless of mode.
///   kDefault — follow the process-wide mode (KernelParams::transform's
///              "no override" value).
enum class TransformMode : std::uint8_t { kDefault, kExact, kRelaxed };

[[nodiscard]] std::string_view to_string(TransformMode mode) noexcept;
/// Parses "exact" / "relaxed" ("default" is also accepted for kDefault).
/// Throws std::runtime_error on unknown names.
[[nodiscard]] TransformMode parse_transform_mode(std::string_view text);

struct KernelParams {
  KernelType type = KernelType::kRbf;
  /// gamma <= 0 means "auto": replaced by 1/dimension at training time.
  double gamma = 0.0;
  double coef0 = 0.0;
  int degree = 3;
  /// Per-model transform-precision override.  kDefault follows the
  /// process-wide mode (transform_mode() below).  Execution hint only —
  /// NOT part of the kernel's identity, so it is excluded from equality
  /// and never serialized (model_io writes the four math fields).
  TransformMode transform = TransformMode::kDefault;

  friend bool operator==(const KernelParams& a, const KernelParams& b) {
    return a.type == b.type && a.gamma == b.gamma && a.coef0 == b.coef0 &&
           a.degree == b.degree;
  }
};

/// Evaluates k(x, y).  For RBF, the squared norms of x and y may be passed
/// to avoid recomputation (the solver precomputes them for all rows).
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y);
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 const util::SparseVector& x,
                                 const util::SparseVector& y, double x_sqnorm,
                                 double y_sqnorm);

/// k(x, x): 1 for RBF, ||x||-dependent otherwise.
[[nodiscard]] double kernel_self(const KernelParams& params,
                                 const util::SparseVector& x);
/// k(x, x) from a cached squared norm (FeatureMatrix rows, scored queries).
[[nodiscard]] double kernel_self(const KernelParams& params, double sq_norm);

/// Batch kernel evaluation: one row of K against *all* rows of a
/// FeatureMatrix in a single pass.  The query is scattered into a dense
/// scratch once, every matrix row then streams contiguous CSR entries, and
/// the kernel transform is applied kernel-hoisted over the whole row.
/// Results are bit-identical to per-pair kernel_eval with cached norms.
/// `out` must hold matrix.rows() elements.
///
/// Query = row i of the matrix itself:
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::size_t i, std::span<double> out);
/// Query = an external vector with its squared norm precomputed (decision
/// functions: compute the query norm once per scored vector, not once per
/// kernel call):
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out);
/// Query = a CSR row borrowed from another matrix (batch scoring):
void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);

/// Non-owning variants over a util::CsrView — the zero-copy path used by
/// memory-mapped support-vector blocks (model_io's blob plane).  Same
/// implementation as the FeatureMatrix overloads (which forward here), so
/// results are bit-identical regardless of who owns the rows.
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out);
void kernel_transform(const KernelParams& params, const util::CsrView& matrix,
                      double x_sqnorm, std::span<double> inout);

// ----------------------------------------------------------------------
// kernel_dispatch seam (DESIGN §11).
//
// When a matrix carries a bitset companion (util::BitsetStorage) and the
// query conforms to its layout, kernel_row/kernel_block compute the raw
// dots as AND+popcount through the backend selected here; otherwise they
// fall back to the scalar CSR path.  Both paths are bit-identical by
// construction (the combine replays the oracle's summation order), which
// the equivalence suites enforce.
//
// The backend is chosen once, at first use: the fastest of the compiled-in
// set the CPU supports (avx512 > avx2 > popcnt > scalar), overridable with
// WTP_KERNEL_BACKEND=<name>.  WTP_KERNEL_BACKEND=csr disables the bitset
// plane entirely (pure scalar CSR).  An unknown name throws at first
// dispatch; a known but unsupported name warns on stderr and falls back to
// the portable scalar backend.
// ----------------------------------------------------------------------

/// Active bitset backend, or nullptr when the bitset plane is disabled.
[[nodiscard]] const util::BitsetDotOps* kernel_dispatch();
/// Name of the active backend ("csr" when disabled).
[[nodiscard]] std::string_view kernel_backend_name();
/// Backend names this host can actually run (always contains "scalar").
[[nodiscard]] std::vector<std::string_view> supported_kernel_backends();
/// Forces a backend by name ("csr" disables the bitset plane; "" re-selects
/// from the environment).  Throws std::runtime_error on unknown or
/// unsupported names.  Also re-selects the transform backend below: the
/// bitset names map onto the transform set ("avx512" -> avx512,
/// "avx2" -> avx2, "popcnt"/"scalar"/"csr" -> scalar).  Test/bench hook —
/// not thread-safe against concurrent kernel calls.
void set_kernel_backend_for_testing(std::string_view name);

// ----------------------------------------------------------------------
// Transform plane (DESIGN §14).
//
// kernel_transform (and therefore every kernel_row/kernel_block tail) runs
// in cache-sized tiles through a SIMD backend selected alongside the bitset
// backend (same WTP_KERNEL_BACKEND override, same fastest-supported
// default).  The exact tier vectorizes everything around the libm call —
// RBF squared-distance assembly with its clamp, the gamma*dot+coef0
// pre-scale, lane-parallel powi — while exp/tanh stay libm per element, so
// outputs remain bit-identical to kernel_eval on every backend.  The
// relaxed tier swaps in the in-repo vectorized exp/tanh (bounded-ULP, see
// svm/relaxed_math.h) and must be explicitly opted into.
// ----------------------------------------------------------------------

/// The process-wide transform mode: kExact unless WTP_TRANSFORM_MODE=relaxed
/// was set at first use or set_transform_mode(kRelaxed) was called.  Never
/// returns kDefault.
[[nodiscard]] TransformMode transform_mode();
/// Overrides the process-wide mode (kDefault re-reads the environment at
/// next use).  Not thread-safe against concurrent kernel calls.
void set_transform_mode(TransformMode mode);
/// The mode kernel_transform will actually use for `params`:
/// params.transform unless kDefault, else transform_mode().
[[nodiscard]] TransformMode effective_transform_mode(const KernelParams& params);
/// Name of the active transform backend ("avx512", "avx2", "scalar").
[[nodiscard]] std::string_view transform_backend_name();

/// Installs per-kernel transform observability into `registry`:
///   kernel.dot_ns{kernel=...}       — time per dot phase (kernel_row/block)
///   kernel.transform_ns{kernel=...} — time per transform tail
///   kernel.transform_relaxed        — gauge, 1 when the process-wide mode
///                                     is relaxed
/// Process-global seam: the registry must outlive all subsequent kernel
/// calls (tools pass obs::Registry::global()).  nullptr uninstalls; timing
/// is a no-op when uninstalled.
void set_kernel_metrics(obs::Registry* registry);

/// Multi-query batch: out[q * matrix.rows() + r] = k(query_q, row_r) for
/// every row of `queries` — the blocked mini-popcount-GEMM behind batched
/// decision functions.  Bit-identical to per-query kernel_row.  When both
/// matrices share a bitset layout (e.g. schema-derived via
/// FeatureMatrix::ensure_bitset) the query encodings are borrowed
/// zero-copy.  `out` must hold queries.rows() * matrix.rows() elements.
void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::span<double> out);
/// Query rows [query_begin, query_begin + query_count) only — lets callers
/// tile large query sets to bound the out-block (out needs query_count *
/// matrix.rows() elements).
void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::size_t query_begin,
                  std::size_t query_count, std::span<double> out);
/// Non-owning variant (mmap'd SV blocks): `matrix_bitset` may be null.
void kernel_block(const KernelParams& params, const util::CsrView& matrix,
                  const util::BitsetView* matrix_bitset,
                  const util::CsrView& queries,
                  const util::BitsetView* queries_bitset, std::span<double> out);

/// Bitset-aware variants of kernel_row over a raw CsrView (the mmap'd model
/// path): when `bitset` is non-null and the query conforms, dots go through
/// the dispatched backend.
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out);
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset, const util::SparseVector& x,
                double x_sqnorm, std::span<double> out);

/// Raw dots (no kernel transform) of every matrix row with a query, routed
/// through the bitset plane when possible.  Bit-identical to
/// FeatureMatrix::dot_all — the entry point for non-kernel consumers (kde
/// densities, knn distances, GramCache rows).
void dot_rows(const util::FeatureMatrix& matrix, const util::SparseVector& x,
              std::span<double> out);
void dot_rows(const util::FeatureMatrix& matrix, std::size_t i,
              std::span<double> out);

/// Reuses one query's bitset encoding across many matrices that share a
/// layout — the cascade's stage-4 survivors and exhaustive fan-outs score
/// one window against hundreds of per-user SV blocks whose layouts are
/// schema-identical, so the encode work is paid once, not per user.
class EncodedQueryCache {
 public:
  EncodedQueryCache(std::span<const std::uint32_t> query_indices,
                    std::span<const double> query_values) noexcept
      : indices_{query_indices}, values_{query_values} {}

  /// Encoding of the query against `layout`, or nullptr when the query does
  /// not conform (callers fall back to the CSR path).
  [[nodiscard]] const util::BitsetQuery* get(const util::BitsetView& layout);

 private:
  struct Entry {
    std::size_t cols;
    std::vector<std::uint32_t> numeric_cols;
    util::BitsetQuery query;
    bool ok;
  };
  std::span<const std::uint32_t> indices_;
  std::span<const double> values_;
  std::vector<Entry> entries_;
};

/// kernel_row with a shared encode cache (see EncodedQueryCache).
void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out, EncodedQueryCache* cache);

/// In-place kernel transform of a raw dot-product row: `inout[j]` holds
/// x . row_j on entry and k(x, row_j) on return.  This is the cheap scalar
/// tail of kernel_row — every grid-search kernel is such a transform of the
/// same Gram row, which is what lets a sweep share dot products across
/// kernels (GramCache).  Bit-identical to kernel_row given the same dots.
void kernel_transform(const KernelParams& params,
                      const util::FeatureMatrix& matrix, double x_sqnorm,
                      std::span<double> inout);

/// Thread-local scratch sized for one kernel row (one value per matrix
/// row), reused across decision-function calls on the same thread.
///
/// Contract: the returned span is valid until the SAME thread's next call —
/// each call may grow (never shrink) one per-thread buffer and returns a
/// prefix of it, so a later call with a larger `size` can relocate the
/// memory behind spans handed out earlier on that thread.  Callers must not
/// hold a previous span across a call, and must not share the span with
/// other threads.  Growth preserves the prefix contents; elements past any
/// previously requested size are value-initialized (0.0).
[[nodiscard]] std::span<double> kernel_row_scratch(std::size_t size);

/// Human-readable "rbf(gamma=0.25)" form for reports.
[[nodiscard]] std::string describe(const KernelParams& params);

}  // namespace wtp::svm
