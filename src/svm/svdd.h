// Support Vector Data Description (Tax & Duin 2004; paper §II-B).
//
// Encloses the training data in a minimum-volume hypersphere (center a,
// radius R) in feature space; slack weight C controls how many points may
// fall outside, with C related to the OC-SVM nu by C = 1/(nu l).  The dual
// (paper eq. 10) is solved by the generic SMO solver with Q = 2K,
// p_i = -K_ii, bounds [0, C], sum(alpha) = 1.
//
// Decision (paper eqs. 11-12): x is accepted when
//   f(x) = R^2 - ||Phi(x) - a||^2
//        = (R^2 - alpha^T K alpha) + 2 sum_i alpha_i k(x_i, x) - k(x, x) >= 0.
//
// Training consumes a util::FeatureMatrix; the support-vector set is kept
// as a compact owned FeatureMatrix block streamed by the batch kernel path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "svm/kernel.h"
#include "svm/smo_solver.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::svm {

struct SvddConfig {
  /// Slack weight C in (0, 1].  Feasibility requires C >= 1/l; smaller
  /// values are clamped up to 1/l at training time (and reported via
  /// effective_c()), matching the usual SVDD implementation behaviour.
  double c = 0.5;
  KernelParams kernel;  ///< gamma <= 0 resolves to 1/dimension
  double eps = 1e-3;
  std::size_t cache_bytes = std::size_t{32} << 20;
  bool shrinking = true;  ///< SolverConfig::shrinking passthrough
  std::size_t shrink_interval = 0;  ///< SolverConfig::shrink_interval passthrough
  /// Optional dot-row cache shared across the kernel columns of one grid
  /// sweep (must be built over the same training matrix).  Null = none.
  std::shared_ptr<GramCache> gram_cache;
};

class SvddModel {
 public:
  /// Trains on the user's window matrix.  Throws std::invalid_argument on
  /// empty data or c outside (0, 1].
  [[nodiscard]] static SvddModel train(const util::FeatureMatrix& data,
                                       const SvddConfig& config,
                                       std::size_t dimension);
  /// Convenience: builds the matrix from a span of SparseVectors first.
  [[nodiscard]] static SvddModel train(std::span<const util::SparseVector> data,
                                       const SvddConfig& config,
                                       std::size_t dimension);

  /// Warm-started regularizer path: one model per C in `cs` (in the given
  /// order) for the fixed kernel of `config`, sharing a single QMatrix (and
  /// hot kernel-row cache) across the sweep and seeding each solve from the
  /// previous alpha projected onto the new box [0, max(C, 1/l)].  Returns
  /// models aligned with `cs`; `config.c` is ignored.  Per-cell solver
  /// statistics and the shared cache totals land in `*stats` when given.
  [[nodiscard]] static std::vector<SvddModel> fit_path(
      const util::FeatureMatrix& data, const SvddConfig& config,
      std::span<const double> cs, std::size_t dimension,
      PathStats* stats = nullptr);

  /// Reconstructs a model from persisted parts (model_io).  `r_squared` and
  /// `alpha_k_alpha` are the stored geometry terms.
  [[nodiscard]] static SvddModel from_parts(
      KernelParams kernel, util::FeatureMatrix support_vectors,
      std::vector<double> coefficients, double r_squared, double alpha_k_alpha);
  [[nodiscard]] static SvddModel from_parts(
      KernelParams kernel, std::vector<util::SparseVector> support_vectors,
      std::vector<double> coefficients, double r_squared, double alpha_k_alpha);

  /// f(x) = R^2 - squared distance of Phi(x) to the center.
  [[nodiscard]] double decision_value(const util::SparseVector& x) const;
  /// Variant with the query's squared norm precomputed by the caller.
  [[nodiscard]] double decision_value(const util::SparseVector& x,
                                      double x_sqnorm) const;
  /// Batch: decision value of every row of `queries`, written to `out`.
  void decision_values(const util::FeatureMatrix& queries,
                       std::span<double> out) const;
  [[nodiscard]] bool accepts(const util::SparseVector& x) const {
    return decision_value(x) >= 0.0;
  }

  /// Squared distance ||Phi(x) - a||^2 (for diagnostics).
  [[nodiscard]] double squared_distance_to_center(const util::SparseVector& x) const;
  [[nodiscard]] double squared_distance_to_center(const util::SparseVector& x,
                                                  double x_sqnorm) const;

  /// The support-vector set as an owned CSR block.
  [[nodiscard]] const util::FeatureMatrix& support_vectors() const noexcept {
    return support_vectors_;
  }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coefficients_;
  }
  [[nodiscard]] double r_squared() const noexcept { return r_squared_; }
  [[nodiscard]] double alpha_k_alpha() const noexcept { return alpha_k_alpha_; }
  [[nodiscard]] const KernelParams& kernel() const noexcept { return kernel_; }
  /// C after feasibility clamping (max(c, 1/l)).
  [[nodiscard]] double effective_c() const noexcept { return effective_c_; }
  /// Instrumentation of the SMO solve that produced this model (zeros for
  /// models reconstructed via from_parts).
  [[nodiscard]] const SolverStats& solver_stats() const noexcept {
    return solver_stats_;
  }

 private:
  SvddModel() = default;

  static SvddModel from_solution(const util::FeatureMatrix& data,
                                 const KernelParams& kernel, double effective_c,
                                 const QMatrix& q, const SolverResult& solved);

  KernelParams kernel_;
  util::FeatureMatrix support_vectors_;
  std::vector<double> coefficients_;
  double r_squared_ = 0.0;
  double alpha_k_alpha_ = 0.0;
  double effective_c_ = 0.0;
  SolverStats solver_stats_;
};

}  // namespace wtp::svm
