#include "svm/kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "svm/kernel_backends.h"
#include "util/strings.h"

namespace wtp::svm {

std::span<double> kernel_row_scratch(std::size_t size) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < size) {
    // Growing relocates the buffer, which invalidates spans handed out
    // earlier on this thread (see the contract in kernel.h).  Grow
    // geometrically so a ratcheting caller triggers O(log n) relocations,
    // and value-initialize the tail so the full span is always readable.
    scratch.resize(std::max(size, scratch.size() * 2), 0.0);
  }
  return std::span<double>{scratch.data(), size};
}

std::string_view to_string(KernelType type) noexcept {
  switch (type) {
    case KernelType::kLinear: return "linear";
    case KernelType::kPolynomial: return "polynomial";
    case KernelType::kRbf: return "rbf";
    case KernelType::kSigmoid: return "sigmoid";
  }
  return "linear";
}

KernelType parse_kernel_type(std::string_view text) {
  const std::string lowered = util::to_lower(text);
  if (lowered == "linear") return KernelType::kLinear;
  if (lowered == "polynomial" || lowered == "poly") return KernelType::kPolynomial;
  if (lowered == "rbf") return KernelType::kRbf;
  if (lowered == "sigmoid") return KernelType::kSigmoid;
  throw std::runtime_error{"parse_kernel_type: unknown kernel '" + std::string{text} + "'"};
}

namespace {

double powi(double base, int exponent) {
  double result = 1.0;
  double factor = base;
  for (int e = exponent; e > 0; e /= 2) {
    if (e % 2 == 1) result *= factor;
    factor *= factor;
  }
  return result;
}

// ------------------------------------------------------ backend selection --

/// Sentinel for "bitset plane disabled" so the atomic can distinguish
/// "not yet selected" (nullptr) from "selected: csr".
const util::BitsetDotOps kCsrSentinel{"csr", nullptr, nullptr, nullptr,
                                      nullptr};
const util::BitsetDotOps* const kCsrOnly = &kCsrSentinel;

std::atomic<const util::BitsetDotOps*> g_backend{nullptr};

const util::BitsetDotOps* find_backend(std::string_view name, bool* supported) {
  for (const auto& backend : detail::kernel_backends()) {
    if (name == backend.ops->name) {
      *supported = backend.supported();
      return backend.ops;
    }
  }
  return nullptr;
}

const util::BitsetDotOps* select_backend(std::string_view requested) {
  if (requested == "csr" || requested == "none" || requested == "off") {
    return kCsrOnly;
  }
  if (!requested.empty()) {
    bool supported = false;
    const util::BitsetDotOps* ops = find_backend(requested, &supported);
    if (ops == nullptr) {
      throw std::runtime_error{"WTP_KERNEL_BACKEND: unknown backend '" +
                               std::string{requested} + "'"};
    }
    if (!supported) {
      std::fprintf(stderr,
                   "wtp: kernel backend '%s' not supported by this CPU; "
                   "falling back to scalar\n",
                   ops->name);
      return &util::scalar_bitset_ops();
    }
    return ops;
  }
  for (const auto& backend : detail::kernel_backends()) {
    if (backend.supported()) return backend.ops;
  }
  return &util::scalar_bitset_ops();
}

const util::BitsetDotOps* active_backend() {
  const util::BitsetDotOps* ops = g_backend.load(std::memory_order_acquire);
  if (ops != nullptr) return ops;
  static std::mutex init_mutex;
  const std::scoped_lock lock{init_mutex};
  ops = g_backend.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const char* env = std::getenv("WTP_KERNEL_BACKEND");
    ops = select_backend(env == nullptr ? std::string_view{} : env);
    g_backend.store(ops, std::memory_order_release);
  }
  return ops;
}

// ------------------------------------------------------- bitset row paths --

/// Raw dots of (query_indices, query_values) against every matrix row via
/// the bitset plane.  Returns false (caller uses the CSR oracle) when the
/// plane is disabled, the matrix has no bitset, or the query does not
/// conform to its layout.
bool bitset_dots(const util::BitsetView* bits,
                 std::span<const std::uint32_t> query_indices,
                 std::span<const double> query_values, std::span<double> out) {
  if (bits == nullptr) return false;
  const util::BitsetDotOps* ops = kernel_dispatch();
  if (ops == nullptr) return false;
  thread_local util::BitsetQuery query;
  if (!query.encode(*bits, query_indices, query_values)) return false;
  util::bitset_dot_rows(*bits, query, out, *ops);
  return true;
}

bool bitset_dots(const util::BitsetView* bits, const util::SparseVector& x,
                 std::span<double> out) {
  if (bits == nullptr) return false;
  const util::BitsetDotOps* ops = kernel_dispatch();
  if (ops == nullptr) return false;
  thread_local util::BitsetQuery query;
  if (!query.encode(*bits, x)) return false;
  util::bitset_dot_rows(*bits, query, out, *ops);
  return true;
}

const util::BitsetView* matrix_bitset_view(const util::FeatureMatrix& matrix,
                                           util::BitsetView* storage) {
  if (kernel_dispatch() == nullptr) return nullptr;  // skip the lazy build
  const util::BitsetStorage* bits = matrix.bitset();
  if (bits == nullptr) return nullptr;
  *storage = bits->view();
  return storage;
}

}  // namespace

const util::BitsetDotOps* kernel_dispatch() {
  const util::BitsetDotOps* ops = active_backend();
  return ops == kCsrOnly ? nullptr : ops;
}

std::string_view kernel_backend_name() {
  const util::BitsetDotOps* ops = active_backend();
  return ops == kCsrOnly ? std::string_view{"csr"} : ops->name;
}

std::vector<std::string_view> supported_kernel_backends() {
  std::vector<std::string_view> names;
  for (const auto& backend : detail::kernel_backends()) {
    if (backend.supported()) names.emplace_back(backend.ops->name);
  }
  return names;
}

void set_kernel_backend_for_testing(std::string_view name) {
  if (name.empty()) {
    g_backend.store(nullptr, std::memory_order_release);
    return;
  }
  if (name == "csr" || name == "none" || name == "off") {
    g_backend.store(kCsrOnly, std::memory_order_release);
    return;
  }
  bool supported = false;
  const util::BitsetDotOps* ops = find_backend(name, &supported);
  if (ops == nullptr) {
    throw std::runtime_error{"set_kernel_backend_for_testing: unknown backend '" +
                             std::string{name} + "'"};
  }
  if (!supported) {
    throw std::runtime_error{"set_kernel_backend_for_testing: backend '" +
                             std::string{name} + "' not supported by this CPU"};
  }
  g_backend.store(ops, std::memory_order_release);
}

double kernel_eval(const KernelParams& params, const util::SparseVector& x,
                   const util::SparseVector& y, double x_sqnorm,
                   double y_sqnorm) {
  switch (params.type) {
    case KernelType::kLinear:
      return x.dot(y);
    case KernelType::kPolynomial:
      return powi(params.gamma * x.dot(y) + params.coef0, params.degree);
    case KernelType::kRbf: {
      const double sq_dist = x_sqnorm + y_sqnorm - 2.0 * x.dot(y);
      return std::exp(-params.gamma * (sq_dist > 0.0 ? sq_dist : 0.0));
    }
    case KernelType::kSigmoid:
      return std::tanh(params.gamma * x.dot(y) + params.coef0);
  }
  throw std::logic_error{"kernel_eval: invalid kernel type"};
}

double kernel_eval(const KernelParams& params, const util::SparseVector& x,
                   const util::SparseVector& y) {
  if (params.type == KernelType::kRbf) {
    return kernel_eval(params, x, y, x.squared_norm(), y.squared_norm());
  }
  return kernel_eval(params, x, y, 0.0, 0.0);
}

double kernel_self(const KernelParams& params, const util::SparseVector& x) {
  return kernel_self(params, x.squared_norm());
}

double kernel_self(const KernelParams& params, double sq_norm) {
  switch (params.type) {
    case KernelType::kRbf:
      return 1.0;
    case KernelType::kLinear:
      return sq_norm;
    case KernelType::kPolynomial:
      return powi(params.gamma * sq_norm + params.coef0, params.degree);
    case KernelType::kSigmoid:
      return std::tanh(params.gamma * sq_norm + params.coef0);
  }
  throw std::logic_error{"kernel_self: invalid kernel type"};
}

/// Shared tail of the kernel_row overloads: `inout` holds raw dot products
/// of the query with every row; transform them in place.  The per-element
/// arithmetic matches kernel_eval exactly (same expressions, same order).
void kernel_transform(const KernelParams& params, const util::CsrView& matrix,
                      double x_sqnorm, std::span<double> out) {
  const std::size_t n = matrix.rows();
  switch (params.type) {
    case KernelType::kLinear:
      return;
    case KernelType::kPolynomial:
      for (std::size_t j = 0; j < n; ++j) {
        out[j] = powi(params.gamma * out[j] + params.coef0, params.degree);
      }
      return;
    case KernelType::kRbf:
      for (std::size_t j = 0; j < n; ++j) {
        const double sq_dist = x_sqnorm + matrix.sq_norm(j) - 2.0 * out[j];
        out[j] = std::exp(-params.gamma * (sq_dist > 0.0 ? sq_dist : 0.0));
      }
      return;
    case KernelType::kSigmoid:
      for (std::size_t j = 0; j < n; ++j) {
        out[j] = std::tanh(params.gamma * out[j] + params.coef0);
      }
      return;
  }
  throw std::logic_error{"kernel_row: invalid kernel type"};
}

void kernel_transform(const KernelParams& params,
                      const util::FeatureMatrix& matrix, double x_sqnorm,
                      std::span<double> out) {
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void dot_rows(const util::FeatureMatrix& matrix, const util::SparseVector& x,
              std::span<double> out) {
  util::BitsetView view_storage;
  const util::BitsetView* bits = matrix_bitset_view(matrix, &view_storage);
  if (!bitset_dots(bits, x, out)) matrix.dot_all(x, out);
}

void dot_rows(const util::FeatureMatrix& matrix, std::size_t i,
              std::span<double> out) {
  util::BitsetView view_storage;
  const util::BitsetView* bits = matrix_bitset_view(matrix, &view_storage);
  if (bits != nullptr) {
    // Rows conform to their own layout by construction: the row IS its
    // encoding, so this path never falls back.
    util::bitset_dot_rows(*bits, i, out, *kernel_dispatch());
    return;
  }
  matrix.dot_all(i, out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::size_t i, std::span<double> out) {
  dot_rows(matrix, i, out);
  kernel_transform(params, matrix.view(), matrix.sq_norm(i), out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out) {
  dot_rows(matrix, x, out);
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  util::BitsetView view_storage;
  const util::BitsetView* bits = matrix_bitset_view(matrix, &view_storage);
  if (!bitset_dots(bits, query_indices, query_values, out)) {
    matrix.dot_all(query_indices, query_values, out);
  }
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  matrix.dot_all(query_indices, query_values, out);
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out) {
  matrix.dot_all(x, out);
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  if (!bitset_dots(bitset, query_indices, query_values, out)) {
    matrix.dot_all(query_indices, query_values, out);
  }
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset, const util::SparseVector& x,
                double x_sqnorm, std::span<double> out) {
  if (!bitset_dots(bitset, x, out)) matrix.dot_all(x, out);
  kernel_transform(params, matrix, x_sqnorm, out);
}

const util::BitsetQuery* EncodedQueryCache::get(const util::BitsetView& layout) {
  for (const Entry& entry : entries_) {
    if (entry.cols == layout.cols &&
        entry.numeric_cols.size() == layout.numeric_cols.size() &&
        std::equal(entry.numeric_cols.begin(), entry.numeric_cols.end(),
                   layout.numeric_cols.begin())) {
      return entry.ok ? &entry.query : nullptr;
    }
  }
  Entry& entry = entries_.emplace_back();
  entry.cols = layout.cols;
  entry.numeric_cols.assign(layout.numeric_cols.begin(), layout.numeric_cols.end());
  entry.ok = entry.query.encode(layout, indices_, values_);
  return entry.ok ? &entry.query : nullptr;
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out, EncodedQueryCache* cache) {
  const util::BitsetDotOps* ops = kernel_dispatch();
  if (bitset != nullptr && ops != nullptr && cache != nullptr) {
    if (const util::BitsetQuery* query = cache->get(*bitset)) {
      util::bitset_dot_rows(*bitset, *query, out, *ops);
      kernel_transform(params, matrix, x_sqnorm, out);
      return;
    }
  }
  kernel_row(params, matrix, bitset, query_indices, query_values, x_sqnorm, out);
}

namespace {

/// Shared core of the kernel_block overloads.
void kernel_block_impl(const KernelParams& params, const util::CsrView& matrix,
                       const util::BitsetView* matrix_bitset,
                       const util::CsrView& queries,
                       const util::BitsetView* queries_bitset,
                       std::span<double> out) {
  const std::size_t n = matrix.rows();
  const std::size_t nq = queries.rows();
  if (nq == 0) return;
  if (out.size() < n * nq) {
    throw std::invalid_argument{"kernel_block: out holds " +
                                std::to_string(out.size()) + " < " +
                                std::to_string(n * nq) + " results"};
  }
  const util::BitsetDotOps* ops = kernel_dispatch();
  bool need_fallback = true;
  thread_local util::BitsetQueryBlock block;
  if (matrix_bitset != nullptr && ops != nullptr && n != 0) {
    block.encode(*matrix_bitset, queries, queries_bitset);
    util::bitset_dot_block(*matrix_bitset, block, out, *ops);
    need_fallback = !block.all_ok();
  }
  for (std::size_t q = 0; q < nq; ++q) {
    std::span<double> row_out = out.subspan(q * n, n);
    if (need_fallback &&
        (matrix_bitset == nullptr || ops == nullptr || n == 0 || !block.ok(q))) {
      matrix.dot_all(queries.row_indices(q), queries.row_values(q), row_out);
    }
    kernel_transform(params, matrix, queries.sq_norm(q), row_out);
  }
}

}  // namespace

void kernel_block(const KernelParams& params, const util::CsrView& matrix,
                  const util::BitsetView* matrix_bitset,
                  const util::CsrView& queries,
                  const util::BitsetView* queries_bitset, std::span<double> out) {
  kernel_block_impl(params, matrix, matrix_bitset, queries, queries_bitset, out);
}

void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::size_t query_begin,
                  std::size_t query_count, std::span<double> out) {
  util::BitsetView matrix_storage;
  const util::BitsetView* matrix_bits = matrix_bitset_view(matrix, &matrix_storage);
  util::BitsetView query_storage;
  const util::BitsetView* query_bits = nullptr;
  if (matrix_bits != nullptr &&
      matrix_bitset_view(queries, &query_storage) != nullptr) {
    query_storage = query_storage.rows_slice(query_begin, query_count);
    query_bits = &query_storage;
  }
  kernel_block_impl(params, matrix.view(), matrix_bits,
                    queries.view().rows_slice(query_begin, query_count),
                    query_bits, out);
}

void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::span<double> out) {
  kernel_block(params, matrix, queries, 0, queries.rows(), out);
}

std::string describe(const KernelParams& params) {
  std::string out{to_string(params.type)};
  out += "(gamma=" + util::format_double(params.gamma, 4);
  if (params.type == KernelType::kPolynomial) {
    out += ", degree=" + std::to_string(params.degree) +
           ", coef0=" + util::format_double(params.coef0, 2);
  } else if (params.type == KernelType::kSigmoid) {
    out += ", coef0=" + util::format_double(params.coef0, 2);
  }
  out += ")";
  return out;
}

}  // namespace wtp::svm
