#include "svm/kernel.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/registry.h"
#include "svm/kernel_backends.h"
#include "svm/kernel_scalar_body.h"
#include "util/strings.h"

namespace wtp::svm {

std::span<double> kernel_row_scratch(std::size_t size) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < size) {
    // Growing relocates the buffer, which invalidates spans handed out
    // earlier on this thread (see the contract in kernel.h).  Grow
    // geometrically so a ratcheting caller triggers O(log n) relocations,
    // and value-initialize the tail so the full span is always readable.
    scratch.resize(std::max(size, scratch.size() * 2), 0.0);
  }
  return std::span<double>{scratch.data(), size};
}

std::string_view to_string(KernelType type) noexcept {
  switch (type) {
    case KernelType::kLinear: return "linear";
    case KernelType::kPolynomial: return "polynomial";
    case KernelType::kRbf: return "rbf";
    case KernelType::kSigmoid: return "sigmoid";
  }
  return "linear";
}

KernelType parse_kernel_type(std::string_view text) {
  const std::string lowered = util::to_lower(text);
  if (lowered == "linear") return KernelType::kLinear;
  if (lowered == "polynomial" || lowered == "poly") return KernelType::kPolynomial;
  if (lowered == "rbf") return KernelType::kRbf;
  if (lowered == "sigmoid") return KernelType::kSigmoid;
  throw std::runtime_error{"parse_kernel_type: unknown kernel '" + std::string{text} + "'"};
}

std::string_view to_string(TransformMode mode) noexcept {
  switch (mode) {
    case TransformMode::kDefault: return "default";
    case TransformMode::kExact: return "exact";
    case TransformMode::kRelaxed: return "relaxed";
  }
  return "exact";
}

TransformMode parse_transform_mode(std::string_view text) {
  const std::string lowered = util::to_lower(text);
  if (lowered == "default") return TransformMode::kDefault;
  if (lowered == "exact") return TransformMode::kExact;
  if (lowered == "relaxed") return TransformMode::kRelaxed;
  throw std::runtime_error{"parse_transform_mode: unknown mode '" +
                           std::string{text} + "' (want exact|relaxed)"};
}

namespace {

// ------------------------------------------------------ backend selection --

/// Sentinel for "bitset plane disabled" so the atomic can distinguish
/// "not yet selected" (nullptr) from "selected: csr".
const util::BitsetDotOps kCsrSentinel{"csr", nullptr, nullptr, nullptr,
                                      nullptr};
const util::BitsetDotOps* const kCsrOnly = &kCsrSentinel;

std::atomic<const util::BitsetDotOps*> g_backend{nullptr};

const util::BitsetDotOps* find_backend(std::string_view name, bool* supported) {
  for (const auto& backend : detail::kernel_backends()) {
    if (name == backend.ops->name) {
      *supported = backend.supported();
      return backend.ops;
    }
  }
  return nullptr;
}

const util::BitsetDotOps* select_backend(std::string_view requested) {
  if (requested == "csr" || requested == "none" || requested == "off") {
    return kCsrOnly;
  }
  if (!requested.empty()) {
    bool supported = false;
    const util::BitsetDotOps* ops = find_backend(requested, &supported);
    if (ops == nullptr) {
      throw std::runtime_error{"WTP_KERNEL_BACKEND: unknown backend '" +
                               std::string{requested} + "'"};
    }
    if (!supported) {
      std::fprintf(stderr,
                   "wtp: kernel backend '%s' not supported by this CPU; "
                   "falling back to scalar\n",
                   ops->name);
      return &util::scalar_bitset_ops();
    }
    return ops;
  }
  for (const auto& backend : detail::kernel_backends()) {
    if (backend.supported()) return backend.ops;
  }
  return &util::scalar_bitset_ops();
}

// ------------------------------------------- transform backend selection --

std::atomic<const detail::TransformOps*> g_transform_ops{nullptr};

/// Maps a WTP_KERNEL_BACKEND name onto the transform set: "avx512"/"avx2"
/// pick the same-named transform backend (scalar if the CPU lacks it —
/// select_backend already warned); names with no transform counterpart
/// ("popcnt", "csr", "none", "off") and the empty request's
/// fastest-supported default resolve here too.  Never throws: the bitset
/// selection already validated the name.
const detail::TransformOps* select_transform_backend(std::string_view requested) {
  if (requested.empty()) {
    for (const auto& backend : detail::transform_backends()) {
      if (backend.supported()) return backend.ops;
    }
    return &detail::scalar_transform_ops();
  }
  for (const auto& backend : detail::transform_backends()) {
    if (requested == backend.ops->name) {
      return backend.supported() ? backend.ops
                                 : &detail::scalar_transform_ops();
    }
  }
  return &detail::scalar_transform_ops();
}

const util::BitsetDotOps* active_backend() {
  const util::BitsetDotOps* ops = g_backend.load(std::memory_order_acquire);
  if (ops != nullptr) return ops;
  static std::mutex init_mutex;
  const std::scoped_lock lock{init_mutex};
  ops = g_backend.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const char* env = std::getenv("WTP_KERNEL_BACKEND");
    const std::string_view requested = env == nullptr ? std::string_view{} : env;
    ops = select_backend(requested);
    // Transform ops are published before g_backend (the release fence), so
    // any thread that observes the bitset selection also observes the
    // transform selection.
    g_transform_ops.store(select_transform_backend(requested),
                          std::memory_order_release);
    g_backend.store(ops, std::memory_order_release);
  }
  return ops;
}

const detail::TransformOps& transform_dispatch() {
  const detail::TransformOps* ops =
      g_transform_ops.load(std::memory_order_acquire);
  if (ops != nullptr) return *ops;
  active_backend();  // selects both planes under one lock
  return *g_transform_ops.load(std::memory_order_acquire);
}

// ----------------------------------------------------------- mode + obs --

constexpr int kModeUnset = -1;
std::atomic<int> g_transform_mode{kModeUnset};

/// Per-kernel dot/transform timers + the relaxed-mode gauge; resolved once
/// per set_kernel_metrics install, lock-free on the hot path.
struct KernelMetrics {
  std::array<obs::Timer*, 4> dot{};
  std::array<obs::Timer*, 4> transform{};
  obs::Gauge* relaxed_active = nullptr;
};

std::atomic<const KernelMetrics*> g_metrics{nullptr};

const KernelMetrics* kernel_metrics() {
  return g_metrics.load(std::memory_order_acquire);
}

std::size_t kernel_index(KernelType type) {
  return static_cast<std::size_t>(type);
}

std::int64_t phase_begin(const KernelMetrics* metrics) {
  if (metrics == nullptr) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void dot_phase_end(const KernelMetrics* metrics, KernelType type,
                   std::int64_t start) {
  if (metrics == nullptr) return;
  const std::int64_t now = phase_begin(metrics);
  metrics->dot[kernel_index(type)]->record_ns(static_cast<double>(now - start));
}

void transform_phase_end(const KernelMetrics* metrics, KernelType type,
                         std::int64_t start) {
  if (metrics == nullptr) return;
  const std::int64_t now = phase_begin(metrics);
  metrics->transform[kernel_index(type)]->record_ns(
      static_cast<double>(now - start));
}

// ------------------------------------------------------- bitset row paths --

/// Raw dots of (query_indices, query_values) against every matrix row via
/// the bitset plane.  Returns false (caller uses the CSR oracle) when the
/// plane is disabled, the matrix has no bitset, or the query does not
/// conform to its layout.
bool bitset_dots(const util::BitsetView* bits,
                 std::span<const std::uint32_t> query_indices,
                 std::span<const double> query_values, std::span<double> out) {
  if (bits == nullptr) return false;
  const util::BitsetDotOps* ops = kernel_dispatch();
  if (ops == nullptr) return false;
  thread_local util::BitsetQuery query;
  if (!query.encode(*bits, query_indices, query_values)) return false;
  util::bitset_dot_rows(*bits, query, out, *ops);
  return true;
}

bool bitset_dots(const util::BitsetView* bits, const util::SparseVector& x,
                 std::span<double> out) {
  if (bits == nullptr) return false;
  const util::BitsetDotOps* ops = kernel_dispatch();
  if (ops == nullptr) return false;
  thread_local util::BitsetQuery query;
  if (!query.encode(*bits, x)) return false;
  util::bitset_dot_rows(*bits, query, out, *ops);
  return true;
}

const util::BitsetView* matrix_bitset_view(const util::FeatureMatrix& matrix,
                                           util::BitsetView* storage) {
  if (kernel_dispatch() == nullptr) return nullptr;  // skip the lazy build
  const util::BitsetStorage* bits = matrix.bitset();
  if (bits == nullptr) return nullptr;
  *storage = bits->view();
  return storage;
}

}  // namespace

const util::BitsetDotOps* kernel_dispatch() {
  const util::BitsetDotOps* ops = active_backend();
  return ops == kCsrOnly ? nullptr : ops;
}

std::string_view kernel_backend_name() {
  const util::BitsetDotOps* ops = active_backend();
  return ops == kCsrOnly ? std::string_view{"csr"} : ops->name;
}

std::vector<std::string_view> supported_kernel_backends() {
  std::vector<std::string_view> names;
  for (const auto& backend : detail::kernel_backends()) {
    if (backend.supported()) names.emplace_back(backend.ops->name);
  }
  return names;
}

void set_kernel_backend_for_testing(std::string_view name) {
  if (name.empty()) {
    g_transform_ops.store(nullptr, std::memory_order_release);
    g_backend.store(nullptr, std::memory_order_release);
    return;
  }
  if (name == "csr" || name == "none" || name == "off") {
    g_transform_ops.store(&detail::scalar_transform_ops(),
                          std::memory_order_release);
    g_backend.store(kCsrOnly, std::memory_order_release);
    return;
  }
  bool supported = false;
  const util::BitsetDotOps* ops = find_backend(name, &supported);
  if (ops == nullptr) {
    throw std::runtime_error{"set_kernel_backend_for_testing: unknown backend '" +
                             std::string{name} + "'"};
  }
  if (!supported) {
    throw std::runtime_error{"set_kernel_backend_for_testing: backend '" +
                             std::string{name} + "' not supported by this CPU"};
  }
  g_transform_ops.store(select_transform_backend(name),
                        std::memory_order_release);
  g_backend.store(ops, std::memory_order_release);
}

TransformMode transform_mode() {
  int mode = g_transform_mode.load(std::memory_order_acquire);
  if (mode == kModeUnset) {
    const char* env = std::getenv("WTP_TRANSFORM_MODE");
    TransformMode parsed = TransformMode::kExact;
    if (env != nullptr && *env != '\0') {
      parsed = parse_transform_mode(env);
      if (parsed == TransformMode::kDefault) parsed = TransformMode::kExact;
    }
    mode = static_cast<int>(parsed);
    // Benign race: concurrent first-callers parse the same environment and
    // store the same value.
    g_transform_mode.store(mode, std::memory_order_release);
  }
  return static_cast<TransformMode>(mode);
}

void set_transform_mode(TransformMode mode) {
  g_transform_mode.store(
      mode == TransformMode::kDefault ? kModeUnset : static_cast<int>(mode),
      std::memory_order_release);
  if (const KernelMetrics* metrics = kernel_metrics()) {
    metrics->relaxed_active->set(
        transform_mode() == TransformMode::kRelaxed ? 1.0 : 0.0);
  }
}

TransformMode effective_transform_mode(const KernelParams& params) {
  return params.transform == TransformMode::kDefault ? transform_mode()
                                                     : params.transform;
}

std::string_view transform_backend_name() {
  return transform_dispatch().name;
}

void set_kernel_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    g_metrics.store(nullptr, std::memory_order_release);
    return;
  }
  // Handle bundles live in a static deque so a pointer published earlier
  // stays valid across re-installs (handles themselves are stable for the
  // registry's lifetime; the registry must outlive all kernel calls —
  // tools pass obs::Registry::global()).
  static std::mutex mutex;
  static std::deque<KernelMetrics> bundles;
  const std::scoped_lock lock{mutex};
  KernelMetrics metrics;
  constexpr std::array<KernelType, 4> kTypes{
      KernelType::kLinear, KernelType::kPolynomial, KernelType::kRbf,
      KernelType::kSigmoid};
  for (const KernelType type : kTypes) {
    const obs::Label label{"kernel", std::string{to_string(type)}};
    const std::span<const obs::Label> labels{&label, 1};
    metrics.dot[kernel_index(type)] = &registry->timer("kernel.dot_ns", labels);
    metrics.transform[kernel_index(type)] =
        &registry->timer("kernel.transform_ns", labels);
  }
  metrics.relaxed_active = &registry->gauge("kernel.transform_relaxed");
  metrics.relaxed_active->set(
      transform_mode() == TransformMode::kRelaxed ? 1.0 : 0.0);
  bundles.push_back(metrics);
  g_metrics.store(&bundles.back(), std::memory_order_release);
}

// The per-element expressions live in svm/kernel_scalar_body.h — the ONE
// scalar definition kernel_eval, kernel_self, and every transform backend
// stamp from, so exact-tier bit-identity is by construction.
double kernel_eval(const KernelParams& params, const util::SparseVector& x,
                   const util::SparseVector& y, double x_sqnorm,
                   double y_sqnorm) {
  switch (params.type) {
    case KernelType::kLinear:
      return x.dot(y);
    case KernelType::kPolynomial:
      return detail::poly_element(params.gamma, params.coef0, params.degree,
                                  x.dot(y));
    case KernelType::kRbf:
      return std::exp(
          detail::rbf_exp_arg(params.gamma, x_sqnorm, y_sqnorm, x.dot(y)));
    case KernelType::kSigmoid:
      return std::tanh(detail::affine_arg(params.gamma, params.coef0, x.dot(y)));
  }
  throw std::logic_error{"kernel_eval: invalid kernel type"};
}

double kernel_eval(const KernelParams& params, const util::SparseVector& x,
                   const util::SparseVector& y) {
  if (params.type == KernelType::kRbf) {
    return kernel_eval(params, x, y, x.squared_norm(), y.squared_norm());
  }
  return kernel_eval(params, x, y, 0.0, 0.0);
}

double kernel_self(const KernelParams& params, const util::SparseVector& x) {
  return kernel_self(params, x.squared_norm());
}

double kernel_self(const KernelParams& params, double sq_norm) {
  switch (params.type) {
    case KernelType::kRbf:
      return 1.0;
    case KernelType::kLinear:
      return sq_norm;
    case KernelType::kPolynomial:
      return detail::poly_element(params.gamma, params.coef0, params.degree,
                                  sq_norm);
    case KernelType::kSigmoid:
      return std::tanh(detail::affine_arg(params.gamma, params.coef0, sq_norm));
  }
  throw std::logic_error{"kernel_self: invalid kernel type"};
}

namespace {

/// Tile width of the batched transform: the argument pass and the exp/tanh
/// pass revisit the same 8 KB of `out` (plus 8 KB of sq_norms for RBF), so
/// a tile stays L1-resident between the two passes.
constexpr std::size_t kTransformTile = 1024;

/// The tiled transform core (DESIGN §14).  Everything around the libm call
/// runs through the dispatched SIMD backend — the RBF squared-distance
/// assembly with its clamp, the gamma*dot+coef0 pre-scale, lane-parallel
/// powi — all bit-identical to kernel_eval's expressions by construction.
/// Exact tier then applies std::exp/std::tanh per element; relaxed tier
/// applies the backend's vectorized stamps instead.
void transform_tiles(const KernelParams& params, const util::CsrView& matrix,
                     double x_sqnorm, std::span<double> out) {
  const std::size_t n = matrix.rows();
  const detail::TransformOps& ops = transform_dispatch();
  switch (params.type) {
    case KernelType::kLinear:
      return;
    case KernelType::kPolynomial:
      // No transcendental: the whole transform is one SIMD pass.
      ops.poly_transform(params.gamma, params.coef0, params.degree, out.data(),
                         n);
      return;
    case KernelType::kRbf: {
      const bool relaxed =
          effective_transform_mode(params) == TransformMode::kRelaxed;
      const double* sq_norms = matrix.sq_norms.data();
      for (std::size_t j = 0; j < n; j += kTransformTile) {
        const std::size_t len = std::min(kTransformTile, n - j);
        double* tile = out.data() + j;
        ops.rbf_exp_args(params.gamma, x_sqnorm, sq_norms + j, tile, len);
        if (relaxed) {
          ops.exp_inplace(tile, len);
        } else {
          for (std::size_t t = 0; t < len; ++t) tile[t] = std::exp(tile[t]);
        }
      }
      return;
    }
    case KernelType::kSigmoid: {
      const bool relaxed =
          effective_transform_mode(params) == TransformMode::kRelaxed;
      for (std::size_t j = 0; j < n; j += kTransformTile) {
        const std::size_t len = std::min(kTransformTile, n - j);
        double* tile = out.data() + j;
        ops.affine_args(params.gamma, params.coef0, tile, len);
        if (relaxed) {
          ops.tanh_inplace(tile, len);
        } else {
          for (std::size_t t = 0; t < len; ++t) tile[t] = std::tanh(tile[t]);
        }
      }
      return;
    }
  }
  throw std::logic_error{"kernel_transform: invalid kernel type"};
}

}  // namespace

/// Shared tail of the kernel_row overloads: `inout` holds raw dot products
/// of the query with every row; transform them in place.  Bit-identical to
/// per-pair kernel_eval in exact mode (the default); see TransformMode for
/// the relaxed tier.
void kernel_transform(const KernelParams& params, const util::CsrView& matrix,
                      double x_sqnorm, std::span<double> out) {
  if (params.type == KernelType::kLinear) return;
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  transform_tiles(params, matrix, x_sqnorm, out);
  transform_phase_end(metrics, params.type, start);
}

void kernel_transform(const KernelParams& params,
                      const util::FeatureMatrix& matrix, double x_sqnorm,
                      std::span<double> out) {
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void dot_rows(const util::FeatureMatrix& matrix, const util::SparseVector& x,
              std::span<double> out) {
  util::BitsetView view_storage;
  const util::BitsetView* bits = matrix_bitset_view(matrix, &view_storage);
  if (!bitset_dots(bits, x, out)) matrix.dot_all(x, out);
}

void dot_rows(const util::FeatureMatrix& matrix, std::size_t i,
              std::span<double> out) {
  util::BitsetView view_storage;
  const util::BitsetView* bits = matrix_bitset_view(matrix, &view_storage);
  if (bits != nullptr) {
    // Rows conform to their own layout by construction: the row IS its
    // encoding, so this path never falls back.
    util::bitset_dot_rows(*bits, i, out, *kernel_dispatch());
    return;
  }
  matrix.dot_all(i, out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::size_t i, std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  dot_rows(matrix, i, out);
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix.view(), matrix.sq_norm(i), out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  dot_rows(matrix, x, out);
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  util::BitsetView view_storage;
  const util::BitsetView* bits = matrix_bitset_view(matrix, &view_storage);
  if (!bitset_dots(bits, query_indices, query_values, out)) {
    matrix.dot_all(query_indices, query_values, out);
  }
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  matrix.dot_all(query_indices, query_values, out);
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  matrix.dot_all(x, out);
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  if (!bitset_dots(bitset, query_indices, query_values, out)) {
    matrix.dot_all(query_indices, query_values, out);
  }
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset, const util::SparseVector& x,
                double x_sqnorm, std::span<double> out) {
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  if (!bitset_dots(bitset, x, out)) matrix.dot_all(x, out);
  dot_phase_end(metrics, params.type, start);
  kernel_transform(params, matrix, x_sqnorm, out);
}

const util::BitsetQuery* EncodedQueryCache::get(const util::BitsetView& layout) {
  for (const Entry& entry : entries_) {
    if (entry.cols == layout.cols &&
        entry.numeric_cols.size() == layout.numeric_cols.size() &&
        std::equal(entry.numeric_cols.begin(), entry.numeric_cols.end(),
                   layout.numeric_cols.begin())) {
      return entry.ok ? &entry.query : nullptr;
    }
  }
  Entry& entry = entries_.emplace_back();
  entry.cols = layout.cols;
  entry.numeric_cols.assign(layout.numeric_cols.begin(), layout.numeric_cols.end());
  entry.ok = entry.query.encode(layout, indices_, values_);
  return entry.ok ? &entry.query : nullptr;
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::BitsetView* bitset,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out, EncodedQueryCache* cache) {
  const util::BitsetDotOps* ops = kernel_dispatch();
  if (bitset != nullptr && ops != nullptr && cache != nullptr) {
    if (const util::BitsetQuery* query = cache->get(*bitset)) {
      const KernelMetrics* metrics = kernel_metrics();
      const std::int64_t start = phase_begin(metrics);
      util::bitset_dot_rows(*bitset, *query, out, *ops);
      dot_phase_end(metrics, params.type, start);
      kernel_transform(params, matrix, x_sqnorm, out);
      return;
    }
  }
  kernel_row(params, matrix, bitset, query_indices, query_values, x_sqnorm, out);
}

namespace {

/// Shared core of the kernel_block overloads.
void kernel_block_impl(const KernelParams& params, const util::CsrView& matrix,
                       const util::BitsetView* matrix_bitset,
                       const util::CsrView& queries,
                       const util::BitsetView* queries_bitset,
                       std::span<double> out) {
  const std::size_t n = matrix.rows();
  const std::size_t nq = queries.rows();
  if (nq == 0) return;
  if (out.size() < n * nq) {
    throw std::invalid_argument{"kernel_block: out holds " +
                                std::to_string(out.size()) + " < " +
                                std::to_string(n * nq) + " results"};
  }
  const util::BitsetDotOps* ops = kernel_dispatch();
  // Dot phase: the blocked bitset mini-GEMM plus CSR fallbacks for queries
  // that did not conform, all before any transform — so the transform
  // phase below streams over finished dots tile by tile (and the obs
  // registry sees a clean dot/transform split).
  const KernelMetrics* metrics = kernel_metrics();
  const std::int64_t start = phase_begin(metrics);
  bool need_fallback = true;
  thread_local util::BitsetQueryBlock block;
  if (matrix_bitset != nullptr && ops != nullptr && n != 0) {
    block.encode(*matrix_bitset, queries, queries_bitset);
    util::bitset_dot_block(*matrix_bitset, block, out, *ops);
    need_fallback = !block.all_ok();
  }
  if (need_fallback) {
    for (std::size_t q = 0; q < nq; ++q) {
      if (matrix_bitset == nullptr || ops == nullptr || n == 0 ||
          !block.ok(q)) {
        matrix.dot_all(queries.row_indices(q), queries.row_values(q),
                       out.subspan(q * n, n));
      }
    }
  }
  dot_phase_end(metrics, params.type, start);
  // Transform phase: per-query tiled SIMD transform (kernel_transform
  // records its own per-kernel timer).
  for (std::size_t q = 0; q < nq; ++q) {
    kernel_transform(params, matrix, queries.sq_norm(q), out.subspan(q * n, n));
  }
}

}  // namespace

void kernel_block(const KernelParams& params, const util::CsrView& matrix,
                  const util::BitsetView* matrix_bitset,
                  const util::CsrView& queries,
                  const util::BitsetView* queries_bitset, std::span<double> out) {
  kernel_block_impl(params, matrix, matrix_bitset, queries, queries_bitset, out);
}

void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::size_t query_begin,
                  std::size_t query_count, std::span<double> out) {
  util::BitsetView matrix_storage;
  const util::BitsetView* matrix_bits = matrix_bitset_view(matrix, &matrix_storage);
  util::BitsetView query_storage;
  const util::BitsetView* query_bits = nullptr;
  if (matrix_bits != nullptr &&
      matrix_bitset_view(queries, &query_storage) != nullptr) {
    query_storage = query_storage.rows_slice(query_begin, query_count);
    query_bits = &query_storage;
  }
  kernel_block_impl(params, matrix.view(), matrix_bits,
                    queries.view().rows_slice(query_begin, query_count),
                    query_bits, out);
}

void kernel_block(const KernelParams& params, const util::FeatureMatrix& matrix,
                  const util::FeatureMatrix& queries, std::span<double> out) {
  kernel_block(params, matrix, queries, 0, queries.rows(), out);
}

std::string describe(const KernelParams& params) {
  std::string out{to_string(params.type)};
  out += "(gamma=" + util::format_double(params.gamma, 4);
  if (params.type == KernelType::kPolynomial) {
    out += ", degree=" + std::to_string(params.degree) +
           ", coef0=" + util::format_double(params.coef0, 2);
  } else if (params.type == KernelType::kSigmoid) {
    out += ", coef0=" + util::format_double(params.coef0, 2);
  }
  out += ")";
  return out;
}

}  // namespace wtp::svm
