#include "svm/kernel.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/strings.h"

namespace wtp::svm {

std::span<double> kernel_row_scratch(std::size_t size) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < size) scratch.resize(size);
  return std::span<double>{scratch.data(), size};
}

std::string_view to_string(KernelType type) noexcept {
  switch (type) {
    case KernelType::kLinear: return "linear";
    case KernelType::kPolynomial: return "polynomial";
    case KernelType::kRbf: return "rbf";
    case KernelType::kSigmoid: return "sigmoid";
  }
  return "linear";
}

KernelType parse_kernel_type(std::string_view text) {
  const std::string lowered = util::to_lower(text);
  if (lowered == "linear") return KernelType::kLinear;
  if (lowered == "polynomial" || lowered == "poly") return KernelType::kPolynomial;
  if (lowered == "rbf") return KernelType::kRbf;
  if (lowered == "sigmoid") return KernelType::kSigmoid;
  throw std::runtime_error{"parse_kernel_type: unknown kernel '" + std::string{text} + "'"};
}

namespace {

double powi(double base, int exponent) {
  double result = 1.0;
  double factor = base;
  for (int e = exponent; e > 0; e /= 2) {
    if (e % 2 == 1) result *= factor;
    factor *= factor;
  }
  return result;
}

}  // namespace

double kernel_eval(const KernelParams& params, const util::SparseVector& x,
                   const util::SparseVector& y, double x_sqnorm,
                   double y_sqnorm) {
  switch (params.type) {
    case KernelType::kLinear:
      return x.dot(y);
    case KernelType::kPolynomial:
      return powi(params.gamma * x.dot(y) + params.coef0, params.degree);
    case KernelType::kRbf: {
      const double sq_dist = x_sqnorm + y_sqnorm - 2.0 * x.dot(y);
      return std::exp(-params.gamma * (sq_dist > 0.0 ? sq_dist : 0.0));
    }
    case KernelType::kSigmoid:
      return std::tanh(params.gamma * x.dot(y) + params.coef0);
  }
  throw std::logic_error{"kernel_eval: invalid kernel type"};
}

double kernel_eval(const KernelParams& params, const util::SparseVector& x,
                   const util::SparseVector& y) {
  if (params.type == KernelType::kRbf) {
    return kernel_eval(params, x, y, x.squared_norm(), y.squared_norm());
  }
  return kernel_eval(params, x, y, 0.0, 0.0);
}

double kernel_self(const KernelParams& params, const util::SparseVector& x) {
  return kernel_self(params, x.squared_norm());
}

double kernel_self(const KernelParams& params, double sq_norm) {
  switch (params.type) {
    case KernelType::kRbf:
      return 1.0;
    case KernelType::kLinear:
      return sq_norm;
    case KernelType::kPolynomial:
      return powi(params.gamma * sq_norm + params.coef0, params.degree);
    case KernelType::kSigmoid:
      return std::tanh(params.gamma * sq_norm + params.coef0);
  }
  throw std::logic_error{"kernel_self: invalid kernel type"};
}

/// Shared tail of the kernel_row overloads: `inout` holds raw dot products
/// of the query with every row; transform them in place.  The per-element
/// arithmetic matches kernel_eval exactly (same expressions, same order).
void kernel_transform(const KernelParams& params, const util::CsrView& matrix,
                      double x_sqnorm, std::span<double> out) {
  const std::size_t n = matrix.rows();
  switch (params.type) {
    case KernelType::kLinear:
      return;
    case KernelType::kPolynomial:
      for (std::size_t j = 0; j < n; ++j) {
        out[j] = powi(params.gamma * out[j] + params.coef0, params.degree);
      }
      return;
    case KernelType::kRbf:
      for (std::size_t j = 0; j < n; ++j) {
        const double sq_dist = x_sqnorm + matrix.sq_norm(j) - 2.0 * out[j];
        out[j] = std::exp(-params.gamma * (sq_dist > 0.0 ? sq_dist : 0.0));
      }
      return;
    case KernelType::kSigmoid:
      for (std::size_t j = 0; j < n; ++j) {
        out[j] = std::tanh(params.gamma * out[j] + params.coef0);
      }
      return;
  }
  throw std::logic_error{"kernel_row: invalid kernel type"};
}

void kernel_transform(const KernelParams& params,
                      const util::FeatureMatrix& matrix, double x_sqnorm,
                      std::span<double> out) {
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::size_t i, std::span<double> out) {
  matrix.dot_all(i, out);
  kernel_transform(params, matrix.view(), matrix.sq_norm(i), out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out) {
  matrix.dot_all(x, out);
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::FeatureMatrix& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  matrix.dot_all(query_indices, query_values, out);
  kernel_transform(params, matrix.view(), x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                std::span<const std::uint32_t> query_indices,
                std::span<const double> query_values, double x_sqnorm,
                std::span<double> out) {
  matrix.dot_all(query_indices, query_values, out);
  kernel_transform(params, matrix, x_sqnorm, out);
}

void kernel_row(const KernelParams& params, const util::CsrView& matrix,
                const util::SparseVector& x, double x_sqnorm,
                std::span<double> out) {
  matrix.dot_all(x, out);
  kernel_transform(params, matrix, x_sqnorm, out);
}

std::string describe(const KernelParams& params) {
  std::string out{to_string(params.type)};
  out += "(gamma=" + util::format_double(params.gamma, 4);
  if (params.type == KernelType::kPolynomial) {
    out += ", degree=" + std::to_string(params.degree) +
           ", coef0=" + util::format_double(params.coef0, 2);
  } else if (params.type == KernelType::kSigmoid) {
    out += ", coef0=" + util::format_double(params.coef0, 2);
  }
  out += ")";
  return out;
}

}  // namespace wtp::svm
