// SIMD kernel-transform backends behind the dispatch seam (DESIGN §14).
//
// Each backend implements detail::TransformOps — the in-place per-element
// transforms that turn a tile of raw dot products into kernel values — with
// per-function target attributes, so one translation unit compiled without
// global -mavx* flags carries every variant and kernel.cpp's dispatcher
// picks one at startup via __builtin_cpu_supports (same machinery and the
// same WTP_KERNEL_BACKEND override as the bitset dot backends).
//
// Two tiers per backend:
//
//   EXACT (rbf_exp_args / affine_args / poly_transform): pure mul/add/max
//   arithmetic mirroring svm/kernel_scalar_body.h expression for
//   expression, with fp-contract pinned OFF — GCC's vector mul/add
//   intrinsics are plain operators and would otherwise fuse into vfmadd,
//   single-rounding products the baseline-ISA scalar oracle rounds twice.
//   VMAXPD(u, 0) replays the scalar clamp `u > 0.0 ? u : 0.0` exactly:
//   it returns the second operand when the first is NaN (NaN → 0, like the
//   ternary) and for ±0.0 vs +0.0 returns the second operand (+0.0), which
//   is also what the ternary produces.  powi is stamped lane-parallel from
//   svm/powi_body.inc — the exponent is uniform across lanes, so every
//   lane runs the scalar stamp's exact multiply sequence.  Every exact-tier
//   output is bit-identical to the scalar backend by construction; the
//   dispatch suite enforces it.
//
//   RELAXED (exp_inplace / tanh_inplace): the vectorized exp/tanh stamps of
//   svm/relaxed_math.h (Cody–Waite + Taylor), WITH FMA — these only run
//   under TransformMode::kRelaxed, whose contract is the documented ULP
//   bound, not bit-identity.  The AVX-512 stamp scales by 2^k with
//   vscalefpd (exact, handles subnormal outputs in one rounding); AVX2 and
//   scalar build 2^k in two exponent-bit steps.
//
//   scalar — kernel_scalar_body.h / relaxed_math.h loops (the reference).
//   avx2   — 4 lanes; exact tier needs avx2 only, relaxed tier needs FMA
//            too, so supported() checks both.
//   avx512 — 8 lanes (AVX-512F only; no VPOPCNTDQ requirement here, though
//            every AVX-512 host we target has both).
#include "svm/kernel_backends.h"

#include <array>
#include <cstddef>

#include "svm/kernel_scalar_body.h"
#include "svm/relaxed_math.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define WTP_X86 1
#else
#define WTP_X86 0
#endif

namespace wtp::svm::detail {

namespace {

using std::size_t;

// ---------------------------------------------------------------- scalar --

bool always_supported() { return true; }

void sc_rbf_exp_args(double gamma, double x_sqnorm, const double* sq_norms,
                     double* inout, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    inout[j] = rbf_exp_arg(gamma, x_sqnorm, sq_norms[j], inout[j]);
  }
}

void sc_affine_args(double gamma, double coef0, double* inout, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    inout[j] = affine_arg(gamma, coef0, inout[j]);
  }
}

void sc_poly_transform(double gamma, double coef0, int degree, double* inout,
                       size_t n) {
  for (size_t j = 0; j < n; ++j) {
    inout[j] = poly_element(gamma, coef0, degree, inout[j]);
  }
}

void sc_exp_inplace(double* inout, size_t n) {
  for (size_t j = 0; j < n; ++j) inout[j] = relaxed_exp(inout[j]);
}

void sc_tanh_inplace(double* inout, size_t n) {
  for (size_t j = 0; j < n; ++j) inout[j] = relaxed_tanh(inout[j]);
}

const TransformOps kScalarTransformOps{
    "scalar",         &sc_rbf_exp_args, &sc_affine_args,
    &sc_poly_transform, &sc_exp_inplace, &sc_tanh_inplace};

#if WTP_X86

// ------------------------------------------------------------ avx2 exact --

// Exact tier: fp-contract must stay off (see file comment).
#define WTP_TX2_EXACT \
  __attribute__((target("avx2"), optimize("-ffp-contract=off")))

#define WTP_POWI_FN powi4
#define WTP_POWI_VEC __m256d
#define WTP_POWI_ONE _mm256_set1_pd(1.0)
#define WTP_POWI_MUL(a, b) _mm256_mul_pd((a), (b))
#define WTP_POWI_ATTR WTP_TX2_EXACT
#include "svm/powi_body.inc"
#undef WTP_POWI_FN
#undef WTP_POWI_VEC
#undef WTP_POWI_ONE
#undef WTP_POWI_MUL
#undef WTP_POWI_ATTR

WTP_TX2_EXACT void avx2_rbf_exp_args(double gamma, double x_sqnorm,
                                     const double* sq_norms, double* inout,
                                     size_t n) {
  const __m256d vng = _mm256_set1_pd(-gamma);
  const __m256d vx = _mm256_set1_pd(x_sqnorm);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vzero = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dot = _mm256_loadu_pd(inout + j);
    const __m256d ysq = _mm256_loadu_pd(sq_norms + j);
    // (x² + y²) - 2·dot, then max(·, 0): same order, same clamp semantics
    // as rbf_exp_arg (NaN and -0.0 both resolve to +0.0 under VMAXPD).
    const __m256d sq_dist = _mm256_sub_pd(_mm256_add_pd(vx, ysq),
                                          _mm256_mul_pd(vtwo, dot));
    _mm256_storeu_pd(inout + j,
                     _mm256_mul_pd(vng, _mm256_max_pd(sq_dist, vzero)));
  }
  for (; j < n; ++j) {
    inout[j] = rbf_exp_arg(gamma, x_sqnorm, sq_norms[j], inout[j]);
  }
}

WTP_TX2_EXACT void avx2_affine_args(double gamma, double coef0, double* inout,
                                    size_t n) {
  const __m256d vg = _mm256_set1_pd(gamma);
  const __m256d vc = _mm256_set1_pd(coef0);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dot = _mm256_loadu_pd(inout + j);
    _mm256_storeu_pd(inout + j, _mm256_add_pd(_mm256_mul_pd(vg, dot), vc));
  }
  for (; j < n; ++j) inout[j] = affine_arg(gamma, coef0, inout[j]);
}

WTP_TX2_EXACT void avx2_poly_transform(double gamma, double coef0, int degree,
                                       double* inout, size_t n) {
  const __m256d vg = _mm256_set1_pd(gamma);
  const __m256d vc = _mm256_set1_pd(coef0);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dot = _mm256_loadu_pd(inout + j);
    const __m256d base = _mm256_add_pd(_mm256_mul_pd(vg, dot), vc);
    _mm256_storeu_pd(inout + j, powi4(base, degree));
  }
  for (; j < n; ++j) inout[j] = poly_element(gamma, coef0, degree, inout[j]);
}

// ---------------------------------------------------------- avx2 relaxed --

// Relaxed tier: FMA on purpose — the contract is the ULP bound, and fused
// Horner steps both tighten and speed up the polynomial.
#define WTP_TX2_RELAXED __attribute__((target("avx2,fma")))

/// Vector stamp of relaxed_exp (relaxed_math.h).  Specials: the k used for
/// scaling is clamped to the representable exponent range, but r inherits
/// NaN from x, and the final blends force x > overflow → +inf and
/// x < underflow → 0 (which also covers ±inf inputs).
WTP_TX2_RELAXED inline __m256d avx2_exp4(__m256d x) {
  const __m256d vk = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kRelaxedLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // Clamp so the exponent-bit build below stays in range even for inputs
  // past the overflow/underflow cutoffs (those lanes are overwritten by the
  // blends at the end).
  const __m256d k = _mm256_max_pd(_mm256_min_pd(vk, _mm256_set1_pd(1025.0)),
                                  _mm256_set1_pd(-1075.0));
  __m256d r = _mm256_fnmadd_pd(k, _mm256_set1_pd(kRelaxedLn2Hi), x);
  r = _mm256_fnmadd_pd(k, _mm256_set1_pd(kRelaxedLn2Lo), r);
  __m256d p = _mm256_set1_pd(kRelaxedExpC[13]);
  for (int i = 12; i >= 0; --i) {
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kRelaxedExpC[i]));
  }
  // 2^k in two exponent-bit steps (relaxed_exp2i): k1 = k>>1 rounds toward
  // -inf, so both halves stay in [-538, 513] — normal powers of two.
  const __m128i ik = _mm256_cvtpd_epi32(k);
  const __m128i ik1 = _mm_srai_epi32(ik, 1);
  const __m128i ik2 = _mm_sub_epi32(ik, ik1);
  const __m128i bias = _mm_set1_epi32(1023);
  const __m256d s1 = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_cvtepi32_epi64(_mm_add_epi32(ik1, bias)), 52));
  const __m256d s2 = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_cvtepi32_epi64(_mm_add_epi32(ik2, bias)), 52));
  __m256d result = _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);
  result = _mm256_blendv_pd(
      result, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
      _mm256_cmp_pd(x, _mm256_set1_pd(kRelaxedExpHi), _CMP_GT_OQ));
  result = _mm256_blendv_pd(
      result, _mm256_setzero_pd(),
      _mm256_cmp_pd(x, _mm256_set1_pd(kRelaxedExpLo), _CMP_LT_OQ));
  return result;  // NaN x: both compares are false, result stays NaN
}

/// Vector stamp of relaxed_tanh: both branches are computed for all lanes
/// and blended on |x| < 0.35 (no divergent control flow).  exp(-2|x|)
/// underflows to 0 for large |x|, so ±1 saturation is free; sign is
/// restored by OR-ing the sign bit back (both branch results are >= 0).
WTP_TX2_RELAXED inline __m256d avx2_tanh4(__m256d x) {
  const __m256d signbit = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, signbit);
  const __m256d a = _mm256_andnot_pd(signbit, x);
  const __m256d u = _mm256_mul_pd(_mm256_set1_pd(2.0), a);
  __m256d q = _mm256_set1_pd(kRelaxedExpm1C[15]);
  for (int i = 14; i >= 0; --i) {
    q = _mm256_fmadd_pd(q, u, _mm256_set1_pd(kRelaxedExpm1C[i]));
  }
  const __m256d em1 = _mm256_mul_pd(u, q);
  const __m256d small =
      _mm256_div_pd(em1, _mm256_add_pd(em1, _mm256_set1_pd(2.0)));
  const __m256d s = avx2_exp4(_mm256_mul_pd(_mm256_set1_pd(-2.0), a));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d big = _mm256_sub_pd(
      one, _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), s),
                         _mm256_add_pd(one, s)));
  // NaN a: compare is false → big branch, which is NaN through s.
  const __m256d result = _mm256_blendv_pd(
      big, small, _mm256_cmp_pd(a, _mm256_set1_pd(kRelaxedTanhSmall),
                                _CMP_LT_OQ));
  return _mm256_or_pd(result, sign);
}

WTP_TX2_RELAXED void avx2_exp_inplace(double* inout, size_t n) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(inout + j, avx2_exp4(_mm256_loadu_pd(inout + j)));
  }
  for (; j < n; ++j) inout[j] = relaxed_exp(inout[j]);
}

WTP_TX2_RELAXED void avx2_tanh_inplace(double* inout, size_t n) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(inout + j, avx2_tanh4(_mm256_loadu_pd(inout + j)));
  }
  for (; j < n; ++j) inout[j] = relaxed_tanh(inout[j]);
}

bool avx2_transform_supported() {
  // The relaxed tier's stamps use FMA; require it up front rather than
  // splitting the backend in two (every AVX2 CPU since Haswell has FMA).
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
}

const TransformOps kAvx2TransformOps{
    "avx2",             &avx2_rbf_exp_args, &avx2_affine_args,
    &avx2_poly_transform, &avx2_exp_inplace, &avx2_tanh_inplace};

// ---------------------------------------------------------- avx512 exact --

// GCC 12's maskz loads can trip -Wmaybe-uninitialized the same way the dot
// backends do; silence just this section.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

// avx512f implies FMA, so the exact tier pins fp-contract=off here too.
#define WTP_TX512_EXACT \
  __attribute__((target("avx512f"), optimize("-ffp-contract=off")))

#define WTP_POWI_FN powi8
#define WTP_POWI_VEC __m512d
#define WTP_POWI_ONE _mm512_set1_pd(1.0)
#define WTP_POWI_MUL(a, b) _mm512_mul_pd((a), (b))
#define WTP_POWI_ATTR WTP_TX512_EXACT
#include "svm/powi_body.inc"
#undef WTP_POWI_FN
#undef WTP_POWI_VEC
#undef WTP_POWI_ONE
#undef WTP_POWI_MUL
#undef WTP_POWI_ATTR

WTP_TX512_EXACT void avx512_rbf_exp_args(double gamma, double x_sqnorm,
                                         const double* sq_norms, double* inout,
                                         size_t n) {
  const __m512d vng = _mm512_set1_pd(-gamma);
  const __m512d vx = _mm512_set1_pd(x_sqnorm);
  const __m512d vtwo = _mm512_set1_pd(2.0);
  const __m512d vzero = _mm512_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d dot = _mm512_loadu_pd(inout + j);
    const __m512d ysq = _mm512_loadu_pd(sq_norms + j);
    const __m512d sq_dist =
        _mm512_sub_pd(_mm512_add_pd(vx, ysq), _mm512_mul_pd(vtwo, dot));
    _mm512_storeu_pd(inout + j,
                     _mm512_mul_pd(vng, _mm512_max_pd(sq_dist, vzero)));
  }
  if (j < n) {
    const __mmask8 tail = static_cast<__mmask8>((1U << (n - j)) - 1);
    const __m512d dot = _mm512_maskz_loadu_pd(tail, inout + j);
    const __m512d ysq = _mm512_maskz_loadu_pd(tail, sq_norms + j);
    const __m512d sq_dist =
        _mm512_sub_pd(_mm512_add_pd(vx, ysq), _mm512_mul_pd(vtwo, dot));
    _mm512_mask_storeu_pd(inout + j, tail,
                          _mm512_mul_pd(vng, _mm512_max_pd(sq_dist, vzero)));
  }
}

WTP_TX512_EXACT void avx512_affine_args(double gamma, double coef0,
                                        double* inout, size_t n) {
  const __m512d vg = _mm512_set1_pd(gamma);
  const __m512d vc = _mm512_set1_pd(coef0);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d dot = _mm512_loadu_pd(inout + j);
    _mm512_storeu_pd(inout + j, _mm512_add_pd(_mm512_mul_pd(vg, dot), vc));
  }
  if (j < n) {
    const __mmask8 tail = static_cast<__mmask8>((1U << (n - j)) - 1);
    const __m512d dot = _mm512_maskz_loadu_pd(tail, inout + j);
    _mm512_mask_storeu_pd(inout + j, tail,
                          _mm512_add_pd(_mm512_mul_pd(vg, dot), vc));
  }
}

WTP_TX512_EXACT void avx512_poly_transform(double gamma, double coef0,
                                           int degree, double* inout,
                                           size_t n) {
  const __m512d vg = _mm512_set1_pd(gamma);
  const __m512d vc = _mm512_set1_pd(coef0);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d dot = _mm512_loadu_pd(inout + j);
    const __m512d base = _mm512_add_pd(_mm512_mul_pd(vg, dot), vc);
    _mm512_storeu_pd(inout + j, powi8(base, degree));
  }
  if (j < n) {
    const __mmask8 tail = static_cast<__mmask8>((1U << (n - j)) - 1);
    const __m512d dot = _mm512_maskz_loadu_pd(tail, inout + j);
    const __m512d base = _mm512_add_pd(_mm512_mul_pd(vg, dot), vc);
    _mm512_mask_storeu_pd(inout + j, tail, powi8(base, degree));
  }
}

// -------------------------------------------------------- avx512 relaxed --

#define WTP_TX512_RELAXED __attribute__((target("avx512f")))

/// Vector stamp of relaxed_exp on 8 lanes.  vscalefpd replaces the two-step
/// exponent build: it computes p * 2^k exactly in one rounding (subnormal
/// outputs included) and saturates for huge |k|, so no clamp on k is needed
/// — the overflow/underflow masks still force the libm-special results.
WTP_TX512_RELAXED inline __m512d avx512_exp8(__m512d x) {
  const __m512d k = _mm512_roundscale_pd(
      _mm512_mul_pd(x, _mm512_set1_pd(kRelaxedLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(k, _mm512_set1_pd(kRelaxedLn2Hi), x);
  r = _mm512_fnmadd_pd(k, _mm512_set1_pd(kRelaxedLn2Lo), r);
  __m512d p = _mm512_set1_pd(kRelaxedExpC[13]);
  for (int i = 12; i >= 0; --i) {
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(kRelaxedExpC[i]));
  }
  __m512d result = _mm512_scalef_pd(p, k);
  result = _mm512_mask_mov_pd(
      result, _mm512_cmp_pd_mask(x, _mm512_set1_pd(kRelaxedExpHi), _CMP_GT_OQ),
      _mm512_set1_pd(std::numeric_limits<double>::infinity()));
  result = _mm512_mask_mov_pd(
      result, _mm512_cmp_pd_mask(x, _mm512_set1_pd(kRelaxedExpLo), _CMP_LT_OQ),
      _mm512_setzero_pd());
  return result;  // NaN x: both masks are off, result stays NaN via r
}

WTP_TX512_RELAXED inline __m512d avx512_tanh8(__m512d x) {
  // Sign-bit splitting in the integer domain: vandpd/vorpd are AVX-512DQ,
  // which the avx512f-only target here does not include.
  const __m512i sign_mask = _mm512_set1_epi64(
      static_cast<long long>(0x8000000000000000ULL));
  const __m512d a = _mm512_castsi512_pd(
      _mm512_andnot_si512(sign_mask, _mm512_castpd_si512(x)));
  const __m512d u = _mm512_mul_pd(_mm512_set1_pd(2.0), a);
  __m512d q = _mm512_set1_pd(kRelaxedExpm1C[15]);
  for (int i = 14; i >= 0; --i) {
    q = _mm512_fmadd_pd(q, u, _mm512_set1_pd(kRelaxedExpm1C[i]));
  }
  const __m512d em1 = _mm512_mul_pd(u, q);
  const __m512d small =
      _mm512_div_pd(em1, _mm512_add_pd(em1, _mm512_set1_pd(2.0)));
  const __m512d s = avx512_exp8(_mm512_mul_pd(_mm512_set1_pd(-2.0), a));
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d big = _mm512_sub_pd(
      one, _mm512_div_pd(_mm512_mul_pd(_mm512_set1_pd(2.0), s),
                         _mm512_add_pd(one, s)));
  const __mmask8 is_small =
      _mm512_cmp_pd_mask(a, _mm512_set1_pd(kRelaxedTanhSmall), _CMP_LT_OQ);
  const __m512d result = _mm512_mask_mov_pd(big, is_small, small);
  const __m512i sign = _mm512_and_si512(_mm512_castpd_si512(x), sign_mask);
  return _mm512_castsi512_pd(
      _mm512_or_si512(_mm512_castpd_si512(result), sign));
}

WTP_TX512_RELAXED void avx512_exp_inplace(double* inout, size_t n) {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(inout + j, avx512_exp8(_mm512_loadu_pd(inout + j)));
  }
  if (j < n) {
    // Masked tail: dead lanes load 0.0, compute exp(0) = 1, and are masked
    // off on the store — same relaxed results as a full vector would give.
    const __mmask8 tail = static_cast<__mmask8>((1U << (n - j)) - 1);
    _mm512_mask_storeu_pd(inout + j, tail,
                          avx512_exp8(_mm512_maskz_loadu_pd(tail, inout + j)));
  }
}

WTP_TX512_RELAXED void avx512_tanh_inplace(double* inout, size_t n) {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(inout + j, avx512_tanh8(_mm512_loadu_pd(inout + j)));
  }
  if (j < n) {
    const __mmask8 tail = static_cast<__mmask8>((1U << (n - j)) - 1);
    _mm512_mask_storeu_pd(inout + j, tail,
                          avx512_tanh8(_mm512_maskz_loadu_pd(tail, inout + j)));
  }
}

#pragma GCC diagnostic pop

bool avx512_transform_supported() {
  return __builtin_cpu_supports("avx512f") != 0;
}

const TransformOps kAvx512TransformOps{
    "avx512",             &avx512_rbf_exp_args, &avx512_affine_args,
    &avx512_poly_transform, &avx512_exp_inplace, &avx512_tanh_inplace};

#endif  // WTP_X86

}  // namespace

std::span<const TransformBackend> transform_backends() noexcept {
#if WTP_X86
  static const std::array<TransformBackend, 3> kBackends{{
      {&kAvx512TransformOps, &avx512_transform_supported},
      {&kAvx2TransformOps, &avx2_transform_supported},
      {&kScalarTransformOps, &always_supported},
  }};
#else
  static const std::array<TransformBackend, 1> kBackends{{
      {&kScalarTransformOps, &always_supported},
  }};
#endif
  return kBackends;
}

const TransformOps& scalar_transform_ops() noexcept {
  return kScalarTransformOps;
}

}  // namespace wtp::svm::detail
