// Generic SMO solver for the one-class quadratic programs (paper §II).
//
// Solves
//     min_alpha  0.5 alpha^T Q alpha + p^T alpha
//     s.t.       0 <= alpha_i <= U,   sum_i alpha_i = Delta
//
// which covers both duals used by the paper:
//   * nu-OC-SVM (eq. 5):  Q = K,  p = 0,      U = 1,   Delta = nu * l
//   * SVDD      (eq. 10): Q = 2K, p_i = -K_ii, U = C,  Delta = 1
//     (the max problem negated into min form)
//
// The working-set selection is the second-order "maximal violating pair"
// rule of LibSVM (WSS2, Fan et al. 2005), specialized to all-positive
// labels.  Kernel rows are float and LRU-cached.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "svm/kernel.h"
#include "svm/kernel_cache.h"
#include "util/feature_matrix.h"

namespace wtp::svm {

/// Lazily evaluated, cached kernel/Q matrix over a CSR training set.
/// `scale` multiplies every entry (1 for OC-SVM's K, 2 for SVDD's 2K).
/// Rows are produced by the batch kernel_row path, streaming the training
/// matrix contiguously; the matrix's cached squared norms serve every RBF
/// evaluation.  The matrix must outlive the QMatrix.
class QMatrix {
 public:
  QMatrix(const util::FeatureMatrix& data, KernelParams params, double scale,
          std::size_t cache_bytes);

  /// Row i of Q (length l), cached.
  [[nodiscard]] std::span<const float> row(std::size_t i);

  /// Diagonal entry Q_ii (precomputed, exact double).
  [[nodiscard]] double diag(std::size_t i) const noexcept { return diag_[i]; }

  /// Raw kernel k(x_i, x_i) (before scaling); SVDD needs it for p.
  [[nodiscard]] double kernel_diag(std::size_t i) const noexcept {
    return kernel_diag_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_->rows(); }
  [[nodiscard]] const KernelParams& params() const noexcept { return params_; }

 private:
  const util::FeatureMatrix* data_;
  KernelParams params_;
  double scale_;
  std::vector<double> kernel_diag_;  // k(x_i, x_i)
  std::vector<double> diag_;         // scale * k(x_i, x_i)
  std::vector<double> row_scratch_;  // double kernel row before float cast
  KernelCache cache_;
};

struct SolverConfig {
  double eps = 1e-3;          ///< KKT violation tolerance (LibSVM default)
  std::size_t max_iter = 0;   ///< 0 = auto: max(10^7, 100*l)
};

struct SolverResult {
  std::vector<double> alpha;
  std::vector<double> gradient;  ///< G_i = (Q alpha)_i + p_i at the solution
  double objective = 0.0;        ///< 0.5 a^T Q a + p^T a
  std::size_t iterations = 0;
  bool converged = false;
};

/// Runs SMO.  Throws std::invalid_argument when the constraint set is empty
/// (Delta < 0 or Delta > U*l) or sizes mismatch.
[[nodiscard]] SolverResult solve_smo(QMatrix& q, std::span<const double> p,
                                     double upper_bound, double alpha_sum,
                                     const SolverConfig& config = {});

}  // namespace wtp::svm
