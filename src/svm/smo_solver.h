// Generic SMO solver for the one-class quadratic programs (paper §II).
//
// Solves
//     min_alpha  0.5 alpha^T Q alpha + p^T alpha
//     s.t.       0 <= alpha_i <= U,   sum_i alpha_i = Delta
//
// which covers both duals used by the paper:
//   * nu-OC-SVM (eq. 5):  Q = K,  p = 0,      U = 1,   Delta = nu * l
//   * SVDD      (eq. 10): Q = 2K, p_i = -K_ii, U = C,  Delta = 1
//     (the max problem negated into min form)
//
// The working-set selection is the second-order "maximal violating pair"
// rule of LibSVM (WSS2, Fan et al. 2005), specialized to all-positive
// labels.  Kernel rows are float and LRU-cached.
//
// Two LibSVM-style accelerations sit behind SolverConfig:
//   * shrinking: bounded variables that strongly satisfy their KKT
//     condition are periodically dropped from the active set; the full
//     gradient is reconstructed exactly (via the G_bar decomposition)
//     before any global convergence claim, so the returned gradient is
//     always the true full-length G = Q alpha + p.
//   * warm starts: solve_smo accepts an initial alpha, projected onto the
//     feasible set deterministically (clip to [0, U]; scale down or fill
//     headroom in index order to restore the sum).  Regularizer paths seed
//     each solve from the previous cell's solution.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "svm/kernel.h"
#include "svm/kernel_cache.h"
#include "util/feature_matrix.h"

namespace wtp::svm {

/// Lazily evaluated, cached kernel/Q matrix over a CSR training set.
/// `scale` multiplies every entry (1 for OC-SVM's K, 2 for SVDD's 2K).
/// Rows are produced by the batch kernel_row path, streaming the training
/// matrix contiguously; the matrix's cached squared norms serve every RBF
/// evaluation.  The matrix must outlive the QMatrix.
class QMatrix {
 public:
  QMatrix(const util::FeatureMatrix& data, KernelParams params, double scale,
          std::size_t cache_bytes);
  /// With a shared GramCache (over the SAME matrix; throws
  /// std::invalid_argument otherwise): row misses fetch the raw dot row
  /// from the shared cache and apply only the kernel transform, so a grid
  /// sweep computes each row's sparse dots once across all its kernels.
  /// Bit-identical to the direct path.  The gram cache must outlive this.
  QMatrix(const util::FeatureMatrix& data, KernelParams params, double scale,
          std::size_t cache_bytes, std::shared_ptr<GramCache> gram);

  /// Row i of Q (length l), cached.
  [[nodiscard]] std::span<const float> row(std::size_t i);

  /// Diagonal entry Q_ii (precomputed, exact double).
  [[nodiscard]] double diag(std::size_t i) const noexcept { return diag_[i]; }

  /// Raw kernel k(x_i, x_i) (before scaling); SVDD needs it for p.
  [[nodiscard]] double kernel_diag(std::size_t i) const noexcept {
    return kernel_diag_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_->rows(); }
  [[nodiscard]] const KernelParams& params() const noexcept { return params_; }

  /// Lifetime totals of the underlying row cache.  A regularizer path that
  /// shares one QMatrix across solves accumulates hits here; tests assert
  /// the reuse instead of guessing at it.
  [[nodiscard]] std::size_t cache_hits() const noexcept { return cache_.hits(); }
  [[nodiscard]] std::size_t cache_misses() const noexcept {
    return cache_.misses();
  }

 private:
  const util::FeatureMatrix* data_;
  KernelParams params_;
  double scale_;
  std::vector<double> kernel_diag_;  // k(x_i, x_i)
  std::vector<double> diag_;         // scale * k(x_i, x_i)
  std::vector<double> row_scratch_;  // double kernel row before float cast
  KernelCache cache_;
  std::shared_ptr<GramCache> gram_;  // optional cross-kernel dot-row share
};

struct SolverConfig {
  double eps = 1e-3;          ///< KKT violation tolerance (LibSVM default)
  std::size_t max_iter = 0;   ///< 0 = auto: max(10^7, 100*l)
  /// Periodically remove bounded, KKT-satisfied variables from the active
  /// set (LibSVM-style).  The unshrunk path (false) is the reference
  /// oracle; tests/svm/solver_equivalence_test.cpp pins both to the same
  /// solution.
  bool shrinking = true;
  std::size_t shrink_interval = 0;  ///< iterations between passes; 0 = min(l, 1000)
};

/// Per-solve instrumentation: iteration/shrink counts plus the KernelCache
/// traffic attributable to this solve (deltas of the QMatrix totals).
struct SolverStats {
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t shrink_events = 0;      ///< shrink passes that removed >= 1 variable
  std::size_t shrunk_variables = 0;   ///< total variables removed, summed over passes
  std::size_t reconstructions = 0;    ///< exact full-gradient rebuilds
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

struct SolverResult {
  std::vector<double> alpha;
  std::vector<double> gradient;  ///< full-length G_i = (Q alpha)_i + p_i
  /// Bounded-part decomposition G_bar_i = U * sum_{j at upper} Q_ij, exact
  /// at exit.  Empty when the solve ran with shrinking off.  Carried across
  /// the cells of a regularizer path (WarmSeed) so the next solve can seed
  /// its gradient incrementally.
  std::vector<double> g_bar;
  double objective = 0.0;        ///< 0.5 a^T Q a + p^T a
  SolverStats stats;
};

/// A previous solution of the SAME QMatrix, handed to solve_smo so a path
/// solve seeds G (and G_bar) by updating only the entries its feasibility
/// projection changed, instead of rebuilding them from every nonzero alpha.
/// `upper_bound` is the bound that produced `alpha`; `g_bar` may be empty
/// (previous solve unshrunk).
struct WarmSeed {
  std::span<const double> alpha;
  std::span<const double> gradient;
  std::span<const double> g_bar;
  double upper_bound = 0.0;
};

/// Statistics of a warm-started regularizer path (fit_path): one
/// SolverStats per grid cell, in sweep order, plus the lifetime totals of
/// the QMatrix row cache shared by every cell.  hits > 0 across a sweep is
/// the observable proof the path actually reused the kernel work.
struct PathStats {
  std::vector<SolverStats> cells;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// Runs SMO.  Throws std::invalid_argument when the constraint set is empty
/// (Delta < 0 or Delta > U*l) or sizes mismatch.  A non-empty `warm_start`
/// (length l) seeds the solve after deterministic projection onto the
/// feasible set; empty falls back to LibSVM's greedy one-class fill.
[[nodiscard]] SolverResult solve_smo(QMatrix& q, std::span<const double> p,
                                     double upper_bound, double alpha_sum,
                                     const SolverConfig& config = {},
                                     std::span<const double> warm_start = {});

/// Warm-started variant for regularizer paths: `seed.alpha` is projected
/// onto the new feasible set exactly like the span overload, but the
/// gradient is seeded from `seed.gradient` plus one cached-row update per
/// projected-away coefficient (and G_bar from `seed.g_bar` plus one update
/// per bound-status change) — O(changed rows) instead of O(support rows).
[[nodiscard]] SolverResult solve_smo(QMatrix& q, std::span<const double> p,
                                     double upper_bound, double alpha_sum,
                                     const SolverConfig& config,
                                     const WarmSeed& seed);

}  // namespace wtp::svm
