#include "core/profiler.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace wtp::core {

std::string_view to_string(ClassifierType type) noexcept {
  switch (type) {
    case ClassifierType::kOcSvm: return "oc-svm";
    case ClassifierType::kSvdd: return "svdd";
  }
  return "?";
}

UserProfile UserProfile::train(std::string user_id,
                               const util::FeatureMatrix& windows,
                               std::size_t dimension, const ProfileParams& params) {
  if (params.type == ClassifierType::kOcSvm) {
    svm::OneClassSvmConfig config;
    config.nu = params.regularizer;
    config.kernel = params.kernel;
    return UserProfile{std::move(user_id), params,
                       svm::OneClassSvmModel::train(windows, config, dimension)};
  }
  svm::SvddConfig config;
  config.c = params.regularizer;
  config.kernel = params.kernel;
  return UserProfile{std::move(user_id), params,
                     svm::SvddModel::train(windows, config, dimension)};
}

UserProfile UserProfile::train(std::string user_id,
                               std::span<const util::SparseVector> windows,
                               std::size_t dimension, const ProfileParams& params) {
  return train(std::move(user_id), util::FeatureMatrix::from_rows(windows),
               dimension, params);
}

double UserProfile::decision_value(const util::SparseVector& window) const {
  return decision_value(window, window.squared_norm());
}

double UserProfile::decision_value(const util::SparseVector& window,
                                   double window_sqnorm) const {
  return std::visit(
      [&](const auto& model) { return model.decision_value(window, window_sqnorm); },
      model_);
}

void UserProfile::decision_values(const util::FeatureMatrix& windows,
                                  std::span<double> out) const {
  std::visit([&](const auto& model) { model.decision_values(windows, out); },
             model_);
}

double UserProfile::acceptance_ratio(
    std::span<const util::SparseVector> windows) const {
  if (windows.empty()) return 0.0;
  std::size_t accepted = 0;
  for (const auto& window : windows) {
    if (accepts(window)) ++accepted;
  }
  return static_cast<double>(accepted) / static_cast<double>(windows.size());
}

double UserProfile::acceptance_ratio(const util::FeatureMatrix& windows,
                                     double slack) const {
  if (windows.empty()) return 0.0;
  thread_local std::vector<double> values;
  values.resize(windows.rows());
  std::visit([&](const auto& model) { model.decision_values(windows, values); },
             model_);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < windows.rows(); ++i) {
    if (values[i] >= -slack) ++accepted;
  }
  return static_cast<double>(accepted) / static_cast<double>(windows.rows());
}

std::size_t UserProfile::support_vector_count() const {
  return std::visit(
      [](const auto& model) { return model.support_vectors().rows(); }, model_);
}

void UserProfile::save(std::ostream& out) const {
  out << "user " << user_id_ << '\n';
  out << "classifier " << to_string(params_.type) << '\n';
  out.precision(17);
  out << "regularizer " << params_.regularizer << '\n';
  std::visit([&out](const auto& model) { svm::save_model(out, model); }, model_);
}

UserProfile UserProfile::load(std::istream& in) {
  std::string key;
  std::string user_id;
  std::string classifier;
  double regularizer = 0.0;
  if (!(in >> key >> user_id) || key != "user") {
    throw std::runtime_error{"UserProfile::load: expected 'user <id>' line"};
  }
  if (!(in >> key >> classifier) || key != "classifier") {
    throw std::runtime_error{"UserProfile::load: expected 'classifier <type>' line"};
  }
  if (!(in >> key >> regularizer) || key != "regularizer") {
    throw std::runtime_error{"UserProfile::load: expected 'regularizer <v>' line"};
  }
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');

  svm::AnySvmModel model = svm::load_model(in);
  ProfileParams params;
  if (classifier == "oc-svm") {
    params.type = ClassifierType::kOcSvm;
  } else if (classifier == "svdd") {
    params.type = ClassifierType::kSvdd;
  } else {
    throw std::runtime_error{"UserProfile::load: unknown classifier '" + classifier + "'"};
  }
  params.regularizer = regularizer;
  params.kernel = std::visit([](const auto& m) { return m.kernel(); }, model);
  return UserProfile{std::move(user_id), params, std::move(model)};
}

}  // namespace wtp::core
