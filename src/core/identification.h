// Online user identification on a shared device (paper §V-B, Fig. 3).
//
// Host-specific windowing: all transactions of a device are aggregated into
// sliding windows regardless of which user produced them; every user model
// is then applied to each window.  The model(s) that accept a window are
// that window's candidate identities; ground truth is the user who produced
// the majority of the window's transactions.  The consecutive-run smoothing
// the paper suggests (§V-B) is implemented as an optional decision rule.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "features/schema.h"
#include "features/window.h"
#include "log/transaction.h"
#include "util/time.h"

namespace wtp::core {

/// One monitored transaction window on a device.
struct IdentificationEvent {
  util::UnixSeconds window_start = 0;
  util::UnixSeconds window_end = 0;
  std::string true_user;                    ///< majority producer of the window
  std::vector<std::string> accepted_by;     ///< models that accepted it
  std::size_t transaction_count = 0;

  [[nodiscard]] bool accepted(const std::string& user) const;
};

class UserIdentifier {
 public:
  /// Profiles must outlive the identifier.
  UserIdentifier(std::span<const UserProfile> profiles,
                 const features::FeatureSchema& schema,
                 features::WindowConfig window);

  /// Runs every profile over the device's (time-sorted) transaction stream.
  [[nodiscard]] std::vector<IdentificationEvent> monitor(
      std::span<const log::WebTransaction> device_txns) const;

  /// Single-window decision: the accepting model, or empty when zero or
  /// multiple models accept (undecidable from one window).
  [[nodiscard]] static std::string decide_single(const IdentificationEvent& event);

  /// Consecutive-run smoothing: identity = the user whose model accepted
  /// every one of the last `run_length` windows (empty when no user did).
  [[nodiscard]] static std::string decide_consecutive(
      std::span<const IdentificationEvent> recent_events, std::size_t run_length);

 private:
  std::span<const UserProfile> profiles_;
  const features::FeatureSchema* schema_;
  features::WindowConfig window_;
};

/// Argmax identification: the profile with the highest decision value for
/// one window (the identification plane's ground-truth decision rule; ties
/// go to the first profile in store order).
struct ArgmaxDecision {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index = npos;  ///< into `profiles`, npos when empty
  double value = 0.0;
};

[[nodiscard]] ArgmaxDecision argmax_decision(std::span<const UserProfile> profiles,
                                             const util::SparseVector& window,
                                             double window_sqnorm);
[[nodiscard]] ArgmaxDecision argmax_decision(std::span<const UserProfile> profiles,
                                             const util::SparseVector& window);

/// Accuracy summary of an identification run.
struct IdentificationMetrics {
  std::size_t windows = 0;
  std::size_t decided = 0;        ///< windows with a single-model decision
  std::size_t correct = 0;        ///< decided windows matching ground truth
  std::size_t true_user_hits = 0; ///< windows whose true user's model accepted

  [[nodiscard]] double decision_accuracy() const {
    return decided ? static_cast<double>(correct) / static_cast<double>(decided) : 0.0;
  }
  [[nodiscard]] double true_acceptance() const {
    return windows ? static_cast<double>(true_user_hits) / static_cast<double>(windows)
                   : 0.0;
  }
};

[[nodiscard]] IdentificationMetrics summarize_events(
    std::span<const IdentificationEvent> events);

/// Smoothing sweep (ablation A1): accuracy of decide_consecutive for each
/// run length in `run_lengths`, over a monitored event stream.
struct SmoothingPoint {
  std::size_t run_length = 1;
  std::size_t decided = 0;
  std::size_t correct = 0;
  [[nodiscard]] double accuracy() const {
    return decided ? static_cast<double>(correct) / static_cast<double>(decided) : 0.0;
  }
};

[[nodiscard]] std::vector<SmoothingPoint> smoothing_sweep(
    std::span<const IdentificationEvent> events,
    std::span<const std::size_t> run_lengths);

}  // namespace wtp::core
