// ProfilingDataset: the paper's data preparation pipeline (§IV).
//
// From a raw transaction log it: groups transactions per user, filters out
// users with too few transactions (paper: < 1,500; 25 of 36 kept), builds
// the bag-of-words feature schema over the full dataset (843 columns at
// paper scale), splits each user's transactions chronologically 75/25 into
// train/test, and materializes transaction windows for any window
// configuration on demand.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "features/schema.h"
#include "features/split.h"
#include "features/window.h"
#include "log/transaction.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::core {

struct DatasetConfig {
  double train_fraction = 0.75;        ///< oldest fraction used for training
  std::size_t min_transactions = 1500; ///< user filter threshold (paper §IV-A)
  std::size_t max_users = 25;          ///< keep the N most active eligible users
  /// Upper bound on windows used to train one model; larger sets are
  /// uniformly subsampled (deterministic stride) to keep SMO tractable.
  std::size_t max_training_windows = 1200;
};

class ProfilingDataset {
 public:
  /// Takes ownership of the (time-sorted) transaction log.
  ProfilingDataset(std::vector<log::WebTransaction> transactions,
                   DatasetConfig config = {});

  [[nodiscard]] const features::FeatureSchema& schema() const noexcept {
    return schema_;
  }
  /// Users that survived the filter, sorted lexicographically.
  [[nodiscard]] const std::vector<std::string>& user_ids() const noexcept {
    return user_ids_;
  }
  [[nodiscard]] std::size_t user_count() const noexcept { return user_ids_.size(); }

  [[nodiscard]] std::span<const log::WebTransaction> train_transactions(
      const std::string& user) const;
  [[nodiscard]] std::span<const log::WebTransaction> test_transactions(
      const std::string& user) const;
  /// All of a user's transactions (train + test, time-sorted).
  [[nodiscard]] std::span<const log::WebTransaction> all_transactions(
      const std::string& user) const;

  /// Training windows for a user under a window configuration, subsampled
  /// to config.max_training_windows.
  [[nodiscard]] std::vector<util::SparseVector> train_windows(
      const std::string& user, const features::WindowConfig& window) const;

  /// Test windows (never subsampled).
  [[nodiscard]] std::vector<util::SparseVector> test_windows(
      const std::string& user, const features::WindowConfig& window) const;

  /// Training windows as a CSR FeatureMatrix (rows = train_windows output,
  /// cols = schema dimension).  Each (window config, user) pair is windowed
  /// exactly once and cached, so a grid search sweeping kernels and nu over
  /// the same window configuration reuses one matrix.  Thread-safe.
  [[nodiscard]] std::shared_ptr<const util::FeatureMatrix> train_matrix(
      const std::string& user, const features::WindowConfig& window) const;

  /// Test windows as a cached CSR FeatureMatrix (never subsampled).
  [[nodiscard]] std::shared_ptr<const util::FeatureMatrix> test_matrix(
      const std::string& user, const features::WindowConfig& window) const;

  /// Full trace grouped by device (for host-specific windowing).
  [[nodiscard]] const std::map<std::string, std::vector<log::WebTransaction>>&
  by_device() const noexcept {
    return by_device_;
  }

  /// Per-user transaction counts of the *kept* users.
  [[nodiscard]] std::map<std::string, std::size_t> transaction_counts() const;

  [[nodiscard]] const DatasetConfig& config() const noexcept { return config_; }

  /// Deterministic uniform subsampling helper (stride-based, keeps order).
  [[nodiscard]] static std::vector<util::SparseVector> subsample(
      std::vector<util::SparseVector> vectors, std::size_t max_count);

 private:
  struct UserData {
    std::vector<log::WebTransaction> transactions;  // time-sorted
    std::size_t train_count = 0;                    // prefix length
  };

  /// Cache key: (duration, shift, train/test, user).
  using MatrixKey = std::tuple<util::UnixSeconds, util::UnixSeconds, bool, std::string>;

  /// Heap-allocated so the dataset stays movable despite the mutex.
  struct MatrixCache {
    std::mutex mutex;
    std::map<MatrixKey, std::shared_ptr<const util::FeatureMatrix>> entries;
  };

  [[nodiscard]] const UserData& user_data(const std::string& user) const;
  [[nodiscard]] std::shared_ptr<const util::FeatureMatrix> cached_matrix(
      const std::string& user, const features::WindowConfig& window,
      bool train) const;

  DatasetConfig config_;
  features::FeatureSchema schema_{{}, {}, {}, {}};
  std::vector<std::string> user_ids_;
  std::map<std::string, UserData> users_;
  std::map<std::string, std::vector<log::WebTransaction>> by_device_;
  mutable std::unique_ptr<MatrixCache> matrix_cache_ = std::make_unique<MatrixCache>();
};

}  // namespace wtp::core
