#include "core/novelty.h"

#include <set>
#include <unordered_set>

#include "features/split.h"
#include "util/stats.h"

namespace wtp::core {

std::string_view to_string(NoveltyField field) noexcept {
  switch (field) {
    case NoveltyField::kCategory: return "category";
    case NoveltyField::kApplicationType: return "application_type";
    case NoveltyField::kMediaType: return "media_type";
  }
  return "?";
}

namespace {

const std::string& field_value(const log::WebTransaction& txn, NoveltyField field) {
  switch (field) {
    case NoveltyField::kCategory: return txn.category;
    case NoveltyField::kApplicationType: return txn.application_type;
    case NoveltyField::kMediaType: return txn.media_type;
  }
  return txn.category;
}

/// |values(subsequent) \ values(observed)| / |values(subsequent)|.
double field_novelty_ratio(std::span<const log::WebTransaction> observed,
                           std::span<const log::WebTransaction> subsequent,
                           NoveltyField field) {
  std::set<std::string> seen;
  for (const auto& txn : observed) seen.insert(field_value(txn, field));
  std::set<std::string> later;
  for (const auto& txn : subsequent) later.insert(field_value(txn, field));
  if (later.empty()) return 0.0;
  std::size_t novel = 0;
  for (const auto& value : later) {
    if (!seen.contains(value)) ++novel;
  }
  return static_cast<double>(novel) / static_cast<double>(later.size());
}

}  // namespace

std::map<NoveltyField, std::vector<NoveltyPoint>> feature_novelty(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user,
    util::UnixSeconds epoch_base, int first_week, int last_week) {
  std::map<NoveltyField, std::vector<NoveltyPoint>> curves;
  for (const NoveltyField field : {NoveltyField::kCategory,
                                   NoveltyField::kApplicationType,
                                   NoveltyField::kMediaType}) {
    std::vector<NoveltyPoint> curve;
    for (int week = first_week; week <= last_week; ++week) {
      const util::UnixSeconds t = epoch_base + week * util::kSecondsPerWeek;
      util::RunningStats stats;
      for (const auto& [user, txns] : by_user) {
        (void)user;
        const auto split = features::epoch_split(txns, t);
        if (split.subsequent.empty() || split.observed.empty()) continue;
        stats.add(field_novelty_ratio(split.observed, split.subsequent, field));
      }
      curve.push_back({week, stats.mean(), stats.variance(), stats.count()});
    }
    curves.emplace(field, std::move(curve));
  }
  return curves;
}

std::vector<NoveltyPoint> window_novelty(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user,
    const features::FeatureSchema& schema, const features::WindowConfig& window,
    util::UnixSeconds epoch_base, int first_week, int last_week) {
  const features::WindowAggregator aggregator{schema, window};

  // Pre-compute each user's full window sequence once; the epoch split then
  // partitions windows by their start time.
  struct UserWindows {
    std::vector<features::Window> windows;
  };
  std::vector<UserWindows> all;
  all.reserve(by_user.size());
  for (const auto& [user, txns] : by_user) {
    (void)user;
    all.push_back({aggregator.aggregate(txns)});
  }

  std::vector<NoveltyPoint> curve;
  for (int week = first_week; week <= last_week; ++week) {
    const util::UnixSeconds t = epoch_base + week * util::kSecondsPerWeek;
    util::RunningStats stats;
    for (const auto& user : all) {
      // Hash observed vectors for exact-match lookup.
      std::set<std::vector<util::SparseVector::Entry>> observed;
      std::size_t subsequent_total = 0;
      std::size_t subsequent_novel = 0;
      for (const auto& w : user.windows) {
        const std::vector<util::SparseVector::Entry> key{
            w.features.entries().begin(), w.features.entries().end()};
        if (w.start < t) {
          observed.insert(key);
        } else {
          ++subsequent_total;
          if (!observed.contains(key)) ++subsequent_novel;
        }
      }
      if (subsequent_total == 0 || observed.empty()) continue;
      stats.add(static_cast<double>(subsequent_novel) /
                static_cast<double>(subsequent_total));
    }
    curve.push_back({week, stats.mean(), stats.variance(), stats.count()});
  }
  return curve;
}

FootprintStats user_footprints(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user) {
  FootprintStats stats;
  if (by_user.empty()) return stats;
  for (const auto& [user, txns] : by_user) {
    (void)user;
    std::set<std::string> categories;
    std::set<std::string> sub_types;
    std::set<std::string> applications;
    for (const auto& txn : txns) {
      categories.insert(txn.category);
      sub_types.insert(log::split_media_type(txn.media_type).sub_type);
      applications.insert(txn.application_type);
    }
    stats.mean_categories += static_cast<double>(categories.size());
    stats.mean_sub_types += static_cast<double>(sub_types.size());
    stats.mean_application_types += static_cast<double>(applications.size());
  }
  const auto n = static_cast<double>(by_user.size());
  stats.mean_categories /= n;
  stats.mean_sub_types /= n;
  stats.mean_application_types /= n;
  return stats;
}

}  // namespace wtp::core
