#include "core/grid_search.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <stdexcept>

namespace wtp::core {

std::vector<features::WindowConfig> paper_window_grid() {
  // Column headers of Tab. II / Tab. IV: (D, S) pairs.
  return {{60, 6}, {60, 30}, {300, 60}, {600, 60}, {1800, 300}, {3600, 300}};
}

std::vector<double> paper_regularizer_grid() {
  return {0.999, 0.99, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5,
          0.4,   0.3,  0.2,  0.1, 0.05, 0.01, 0.001};
}

std::vector<svm::KernelParams> paper_kernel_grid(double gamma) {
  std::vector<svm::KernelParams> kernels;
  kernels.push_back({svm::KernelType::kLinear, gamma, 0.0, 3});
  kernels.push_back({svm::KernelType::kPolynomial, gamma, 1.0, 3});
  kernels.push_back({svm::KernelType::kRbf, gamma, 0.0, 3});
  kernels.push_back({svm::KernelType::kSigmoid, gamma, 0.0, 3});
  return kernels;
}

namespace {

/// Trains a profile and scores it against every user's training windows;
/// returns the paper's stage-1 ratios for one (user, config) cell.
AcceptanceRatios training_set_ratios(
    const std::string& user, const ProfileParams& params,
    const MatrixByUser& train_windows, std::size_t dimension) {
  const auto& own_windows = *train_windows.at(user);
  if (own_windows.empty()) return {.acc_self = 0.0, .acc_other = 100.0};
  try {
    const UserProfile profile =
        UserProfile::train(user, own_windows, dimension, params);
    return profile_acceptance(profile, train_windows);
  } catch (const std::invalid_argument&) {
    // Infeasible configuration (e.g. SVDD with C*l < 1 after clamping, or a
    // degenerate training set): maximally bad score, keeps the sweep going.
    return {.acc_self = 0.0, .acc_other = 100.0};
  }
}

/// Each (window, user) pair is windowed into a CSR matrix exactly once: the
/// dataset's matrix cache hands out shared matrices, so every grid point of
/// a kernel x nu sweep at this window configuration reuses the same rows.
MatrixByUser all_train_matrices(const ProfilingDataset& dataset,
                                const features::WindowConfig& window,
                                util::ThreadPool& pool) {
  const auto& users = dataset.user_ids();
  std::vector<std::shared_ptr<const util::FeatureMatrix>> per_user(users.size());
  util::parallel_for(pool, users.size(), [&](std::size_t u) {
    per_user[u] = dataset.train_matrix(users[u], window);
  });
  MatrixByUser matrices;
  for (std::size_t u = 0; u < users.size(); ++u) {
    matrices.emplace(users[u], std::move(per_user[u]));
  }
  return matrices;
}

}  // namespace

std::vector<WindowGridEntry> window_grid_search(
    const ProfilingDataset& dataset,
    std::span<const features::WindowConfig> window_grid,
    const ProfileParams& base_params, util::ThreadPool& pool) {
  std::vector<WindowGridEntry> entries;
  entries.reserve(window_grid.size());
  const auto& users = dataset.user_ids();
  if (users.empty()) throw std::invalid_argument{"window_grid_search: no users"};
  for (const auto& window : window_grid) {
    const MatrixByUser train_windows = all_train_matrices(dataset, window, pool);
    std::vector<AcceptanceRatios> per_user(users.size());
    util::parallel_for(pool, users.size(), [&](std::size_t u) {
      per_user[u] = training_set_ratios(users[u], base_params, train_windows,
                                        dataset.schema().dimension());
    });
    WindowGridEntry entry;
    entry.window = window;
    for (const auto& ratios : per_user) {
      entry.ratios.acc_self += ratios.acc_self;
      entry.ratios.acc_other += ratios.acc_other;
    }
    entry.ratios.acc_self /= static_cast<double>(users.size());
    entry.ratios.acc_other /= static_cast<double>(users.size());
    entries.push_back(entry);
  }
  return entries;
}

const WindowGridEntry& best_by_acc_self(std::span<const WindowGridEntry> entries) {
  if (entries.empty()) throw std::invalid_argument{"best_by_acc_self: empty"};
  return *std::max_element(entries.begin(), entries.end(),
                           [](const auto& a, const auto& b) {
                             return a.ratios.acc_self < b.ratios.acc_self;
                           });
}

const WindowGridEntry& best_by_acc(std::span<const WindowGridEntry> entries) {
  if (entries.empty()) throw std::invalid_argument{"best_by_acc: empty"};
  return *std::max_element(entries.begin(), entries.end(),
                           [](const auto& a, const auto& b) {
                             return a.ratios.acc() < b.ratios.acc();
                           });
}

std::vector<ParamGridEntry> param_grid_search(
    const ProfilingDataset& dataset, const std::string& user,
    const features::WindowConfig& window, ClassifierType type,
    std::span<const svm::KernelParams> kernels,
    std::span<const double> regularizers, util::ThreadPool& pool) {
  const MatrixByUser train_windows = all_train_matrices(dataset, window, pool);
  std::vector<ParamGridEntry> entries(kernels.size() * regularizers.size());
  util::parallel_for(pool, entries.size(), [&](std::size_t index) {
    const std::size_t k = index / regularizers.size();
    const std::size_t r = index % regularizers.size();
    ParamGridEntry& entry = entries[index];
    entry.params.type = type;
    entry.params.kernel = kernels[k];
    entry.params.regularizer = regularizers[r];
    entry.ratios = training_set_ratios(user, entry.params, train_windows,
                                       dataset.schema().dimension());
    entry.trainable =
        !(entry.ratios.acc_self == 0.0 && entry.ratios.acc_other == 100.0);
  });
  return entries;
}

const ParamGridEntry& best_params(std::span<const ParamGridEntry> entries) {
  const ParamGridEntry* best = nullptr;
  for (const auto& entry : entries) {
    if (!entry.trainable) continue;
    if (best == nullptr || entry.ratios.acc() > best->ratios.acc()) best = &entry;
  }
  if (best == nullptr) {
    throw std::runtime_error{"best_params: no trainable grid entry"};
  }
  return *best;
}

std::vector<ProfileParams> optimize_all_users(
    const ProfilingDataset& dataset, const features::WindowConfig& window,
    ClassifierType type, std::span<const svm::KernelParams> kernels,
    std::span<const double> regularizers, util::ThreadPool& pool) {
  const MatrixByUser train_windows = all_train_matrices(dataset, window, pool);
  const auto& users = dataset.user_ids();
  const std::size_t grid_size = kernels.size() * regularizers.size();
  std::vector<std::vector<ParamGridEntry>> grids(
      users.size(), std::vector<ParamGridEntry>(grid_size));
  util::parallel_for(pool, users.size() * grid_size, [&](std::size_t index) {
    const std::size_t u = index / grid_size;
    const std::size_t g = index % grid_size;
    const std::size_t k = g / regularizers.size();
    const std::size_t r = g % regularizers.size();
    ParamGridEntry& entry = grids[u][g];
    entry.params.type = type;
    entry.params.kernel = kernels[k];
    entry.params.regularizer = regularizers[r];
    entry.ratios = training_set_ratios(users[u], entry.params, train_windows,
                                       dataset.schema().dimension());
    entry.trainable =
        !(entry.ratios.acc_self == 0.0 && entry.ratios.acc_other == 100.0);
  });
  std::vector<ProfileParams> chosen;
  chosen.reserve(users.size());
  for (const auto& grid : grids) chosen.push_back(best_params(grid).params);
  return chosen;
}

std::vector<UserProfile> train_profiles(const ProfilingDataset& dataset,
                                        const features::WindowConfig& window,
                                        std::span<const ProfileParams> params,
                                        util::ThreadPool& pool) {
  const auto& users = dataset.user_ids();
  if (params.size() != users.size()) {
    throw std::invalid_argument{"train_profiles: params/users size mismatch"};
  }
  std::vector<std::optional<UserProfile>> slots(users.size());
  std::mutex error_mutex;
  std::string first_error;
  util::parallel_for(pool, users.size(), [&](std::size_t u) {
    try {
      const auto windows = dataset.train_matrix(users[u], window);
      slots[u] = UserProfile::train(users[u], *windows,
                                    dataset.schema().dimension(), params[u]);
    } catch (const std::exception& e) {
      const std::lock_guard lock{error_mutex};
      if (first_error.empty()) first_error = users[u] + ": " + e.what();
    }
  });
  if (!first_error.empty()) {
    throw std::runtime_error{"train_profiles: " + first_error};
  }
  std::vector<UserProfile> profiles;
  profiles.reserve(users.size());
  for (auto& slot : slots) profiles.push_back(std::move(*slot));
  return profiles;
}

TestEvaluation evaluate_on_test(const ProfilingDataset& dataset,
                                const features::WindowConfig& window,
                                std::span<const UserProfile> profiles,
                                util::ThreadPool& pool) {
  const auto& users = dataset.user_ids();
  std::vector<std::shared_ptr<const util::FeatureMatrix>> per_user(users.size());
  util::parallel_for(pool, users.size(), [&](std::size_t u) {
    per_user[u] = dataset.test_matrix(users[u], window);
  });
  MatrixByUser test_windows;
  for (std::size_t u = 0; u < users.size(); ++u) {
    test_windows.emplace(users[u], std::move(per_user[u]));
  }
  TestEvaluation evaluation;
  evaluation.mean_ratios = mean_acceptance(profiles, test_windows);
  evaluation.confusion = compute_confusion(profiles, test_windows);
  return evaluation;
}

}  // namespace wtp::core
