#include "core/grid_search.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/trace.h"

namespace wtp::core {

std::vector<features::WindowConfig> paper_window_grid() {
  // Column headers of Tab. II / Tab. IV: (D, S) pairs.
  return {{60, 6}, {60, 30}, {300, 60}, {600, 60}, {1800, 300}, {3600, 300}};
}

std::vector<double> paper_regularizer_grid() {
  return {0.999, 0.99, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5,
          0.4,   0.3,  0.2,  0.1, 0.05, 0.01, 0.001};
}

std::vector<svm::KernelParams> paper_kernel_grid(double gamma) {
  std::vector<svm::KernelParams> kernels;
  kernels.push_back({svm::KernelType::kLinear, gamma, 0.0, 3});
  kernels.push_back({svm::KernelType::kPolynomial, gamma, 1.0, 3});
  kernels.push_back({svm::KernelType::kRbf, gamma, 0.0, 3});
  kernels.push_back({svm::KernelType::kSigmoid, gamma, 0.0, 3});
  return kernels;
}

namespace {

/// Grid-search counters on the global registry.  Handles are resolved once
/// (the registry keeps them stable), so per-cell cost is a relaxed add.
struct GridMetrics {
  obs::Counter& window_cells;
  obs::Counter& warm_columns;
  obs::Counter& warm_cells;
  obs::Counter& cold_cells;
  obs::Counter& untrainable_cells;

  static const GridMetrics& get() {
    static const GridMetrics metrics = [] {
      obs::Registry& r = obs::Registry::global();
      const obs::Label warm{"mode", "warm"};
      const obs::Label cold{"mode", "cold"};
      return GridMetrics{r.counter("grid.window_cells"),
                         r.counter("grid.columns"),
                         r.counter("grid.cells", {&warm, 1}),
                         r.counter("grid.cells", {&cold, 1}),
                         r.counter("grid.untrainable_cells")};
    }();
    return metrics;
  }
};

/// Trains a profile and scores it against every user's training windows;
/// returns the paper's stage-1 ratios for one (user, config) cell.
AcceptanceRatios training_set_ratios(
    const std::string& user, const ProfileParams& params,
    const MatrixByUser& train_windows, std::size_t dimension) {
  const obs::TraceSpan span{"grid.window_cell", "grid"};
  GridMetrics::get().window_cells.add(1);
  const auto& own_windows = *train_windows.at(user);
  if (own_windows.empty()) return {.acc_self = 0.0, .acc_other = 100.0};
  try {
    const UserProfile profile =
        UserProfile::train(user, own_windows, dimension, params);
    return profile_acceptance(profile, train_windows);
  } catch (const std::invalid_argument&) {
    // Infeasible configuration (e.g. SVDD with C*l < 1 after clamping, or a
    // degenerate training set): maximally bad score, keeps the sweep going.
    return {.acc_self = 0.0, .acc_other = 100.0};
  }
}

/// The {0, 100} sentinel: maximally bad ratios marking a cell whose
/// training failed (infeasible or degenerate configuration).
constexpr AcceptanceRatios untrainable_ratios() {
  return {.acc_self = 0.0, .acc_other = 100.0};
}

/// Stage-2 cells solve tighter than the production default and score with a
/// small acceptance slack.  Free support vectors sit exactly on the decision
/// boundary, so at slack 0 their accept/reject sign — and therefore ACC —
/// depends on which near-optimal point a solve happened to stop at.  Solver
/// noise at kGridCellEps is orders of magnitude below kGridAcceptSlack while
/// genuine rejections clear the slack by a real margin, making warm-path and
/// cold per-cell scores (and the selected argmax) identical.
constexpr double kGridCellEps = 1e-6;
constexpr double kGridAcceptSlack = 1e-4;

bool is_trainable(const AcceptanceRatios& ratios) {
  return !(ratios.acc_self == 0.0 && ratios.acc_other == 100.0);
}

/// One stage-2 cell trained from scratch (the cold reference): same solver
/// tolerance and acceptance slack as the warm path, so the two modes differ
/// only in how the solution is reached.
AcceptanceRatios grid_cell_ratios(const std::string& user,
                                  const ProfileParams& params,
                                  const MatrixByUser& train_windows,
                                  std::size_t dimension) {
  const obs::TraceSpan span{"grid.cell", "grid"};
  const GridMetrics& metrics = GridMetrics::get();
  metrics.cold_cells.add(1);
  const auto& own_windows = *train_windows.at(user);
  if (own_windows.empty()) {
    metrics.untrainable_cells.add(1);
    return untrainable_ratios();
  }
  try {
    const auto train = [&]() -> svm::AnySvmModel {
      if (params.type == ClassifierType::kOcSvm) {
        svm::OneClassSvmConfig config;
        config.nu = params.regularizer;
        config.kernel = params.kernel;
        config.eps = kGridCellEps;
        return svm::OneClassSvmModel::train(own_windows, config, dimension);
      }
      svm::SvddConfig config;
      config.c = params.regularizer;
      config.kernel = params.kernel;
      config.eps = kGridCellEps;
      return svm::SvddModel::train(own_windows, config, dimension);
    };
    const UserProfile profile = UserProfile::from_model(user, params, train());
    return profile_acceptance(profile, train_windows, kGridAcceptSlack);
  } catch (const std::invalid_argument&) {
    metrics.untrainable_cells.add(1);
    return untrainable_ratios();
  }
}

/// One kernel's regularizer column for one user, trained as a single
/// warm-started fit_path sweep: the QMatrix (and its kernel-row cache) is
/// built once, each cell's solve seeded from the previous alpha.  `gram`
/// (may be null) shares the raw dot-product rows across every kernel column
/// of the same user, so concurrent columns pay only the scalar kernel
/// transform after the first one computes a row.  Scores are identical to
/// per-cell cold fits (same converged QP, same decision thresholding); only
/// the route there is cheaper.  Failures mark the whole column untrainable —
/// feasibility depends on the shared training matrix, not on the
/// regularizer value.
std::vector<ParamGridEntry> regularizer_path_entries(
    const std::string& user, ClassifierType type,
    const svm::KernelParams& kernel, std::span<const double> regularizers,
    const MatrixByUser& train_windows, std::size_t dimension,
    const std::shared_ptr<svm::GramCache>& gram) {
  const obs::TraceSpan span{"grid.column", "grid",
                            static_cast<std::uint64_t>(regularizers.size())};
  const GridMetrics& metrics = GridMetrics::get();
  metrics.warm_columns.add(1);
  metrics.warm_cells.add(regularizers.size());
  std::vector<ParamGridEntry> entries(regularizers.size());
  for (std::size_t r = 0; r < regularizers.size(); ++r) {
    entries[r].params.type = type;
    entries[r].params.kernel = kernel;
    entries[r].params.regularizer = regularizers[r];
  }
  const auto mark_untrainable = [&entries] {
    for (auto& entry : entries) {
      entry.ratios = untrainable_ratios();
      entry.trainable = false;
    }
  };
  const auto& own_windows = *train_windows.at(user);
  if (own_windows.empty()) {
    mark_untrainable();
    return entries;
  }
  try {
    const auto score = [&](std::size_t r, svm::AnySvmModel model) {
      const UserProfile profile = UserProfile::from_model(
          user, entries[r].params, std::move(model));
      entries[r].ratios =
          profile_acceptance(profile, train_windows, kGridAcceptSlack);
      entries[r].trainable = is_trainable(entries[r].ratios);
    };
    if (type == ClassifierType::kOcSvm) {
      svm::OneClassSvmConfig config;
      config.kernel = kernel;
      config.eps = kGridCellEps;
      config.gram_cache = gram;
      auto models = svm::OneClassSvmModel::fit_path(own_windows, config,
                                                    regularizers, dimension);
      for (std::size_t r = 0; r < models.size(); ++r) {
        score(r, std::move(models[r]));
      }
    } else {
      svm::SvddConfig config;
      config.kernel = kernel;
      config.eps = kGridCellEps;
      config.gram_cache = gram;
      auto models =
          svm::SvddModel::fit_path(own_windows, config, regularizers, dimension);
      for (std::size_t r = 0; r < models.size(); ++r) {
        score(r, std::move(models[r]));
      }
    }
  } catch (const std::invalid_argument&) {
    mark_untrainable();
  }
  for (const auto& entry : entries) {
    if (!entry.trainable) metrics.untrainable_cells.add(1);
  }
  return entries;
}

/// Each (window, user) pair is windowed into a CSR matrix exactly once: the
/// dataset's matrix cache hands out shared matrices, so every grid point of
/// a kernel x nu sweep at this window configuration reuses the same rows.
MatrixByUser all_train_matrices(const ProfilingDataset& dataset,
                                const features::WindowConfig& window,
                                util::ThreadPool& pool) {
  const auto& users = dataset.user_ids();
  std::vector<std::shared_ptr<const util::FeatureMatrix>> per_user(users.size());
  util::parallel_for(pool, users.size(), [&](std::size_t u) {
    per_user[u] = dataset.train_matrix(users[u], window);
  });
  MatrixByUser matrices;
  for (std::size_t u = 0; u < users.size(); ++u) {
    matrices.emplace(users[u], std::move(per_user[u]));
  }
  return matrices;
}

}  // namespace

std::vector<WindowGridEntry> window_grid_search(
    const ProfilingDataset& dataset,
    std::span<const features::WindowConfig> window_grid,
    const ProfileParams& base_params, util::ThreadPool& pool) {
  std::vector<WindowGridEntry> entries;
  entries.reserve(window_grid.size());
  const auto& users = dataset.user_ids();
  if (users.empty()) throw std::invalid_argument{"window_grid_search: no users"};
  for (const auto& window : window_grid) {
    const MatrixByUser train_windows = all_train_matrices(dataset, window, pool);
    std::vector<AcceptanceRatios> per_user(users.size());
    util::parallel_for(pool, users.size(), [&](std::size_t u) {
      per_user[u] = training_set_ratios(users[u], base_params, train_windows,
                                        dataset.schema().dimension());
    });
    WindowGridEntry entry;
    entry.window = window;
    for (const auto& ratios : per_user) {
      entry.ratios.acc_self += ratios.acc_self;
      entry.ratios.acc_other += ratios.acc_other;
    }
    entry.ratios.acc_self /= static_cast<double>(users.size());
    entry.ratios.acc_other /= static_cast<double>(users.size());
    entries.push_back(entry);
  }
  return entries;
}

const WindowGridEntry& best_by_acc_self(std::span<const WindowGridEntry> entries) {
  if (entries.empty()) throw std::invalid_argument{"best_by_acc_self: empty"};
  return *std::max_element(entries.begin(), entries.end(),
                           [](const auto& a, const auto& b) {
                             return a.ratios.acc_self < b.ratios.acc_self;
                           });
}

const WindowGridEntry& best_by_acc(std::span<const WindowGridEntry> entries) {
  if (entries.empty()) throw std::invalid_argument{"best_by_acc: empty"};
  return *std::max_element(entries.begin(), entries.end(),
                           [](const auto& a, const auto& b) {
                             return a.ratios.acc() < b.ratios.acc();
                           });
}

std::vector<ParamGridEntry> param_grid_search(
    const ProfilingDataset& dataset, const std::string& user,
    const features::WindowConfig& window, ClassifierType type,
    std::span<const svm::KernelParams> kernels,
    std::span<const double> regularizers, util::ThreadPool& pool,
    GridSearchMode mode) {
  const MatrixByUser train_windows = all_train_matrices(dataset, window, pool);
  std::vector<ParamGridEntry> entries(kernels.size() * regularizers.size());
  if (mode == GridSearchMode::kWarmPath) {
    // One task per kernel: the regularizer column is a single warm path.
    // All columns transform the same Gram rows, so they share one dot cache.
    const auto& own_windows = *train_windows.at(user);
    const auto gram = own_windows.empty()
                          ? nullptr
                          : std::make_shared<svm::GramCache>(own_windows);
    util::parallel_for(pool, kernels.size(), [&](std::size_t k) {
      auto column = regularizer_path_entries(user, type, kernels[k],
                                             regularizers, train_windows,
                                             dataset.schema().dimension(), gram);
      std::move(column.begin(), column.end(),
                entries.begin() +
                    static_cast<std::ptrdiff_t>(k * regularizers.size()));
    });
    return entries;
  }
  util::parallel_for(pool, entries.size(), [&](std::size_t index) {
    const std::size_t k = index / regularizers.size();
    const std::size_t r = index % regularizers.size();
    ParamGridEntry& entry = entries[index];
    entry.params.type = type;
    entry.params.kernel = kernels[k];
    entry.params.regularizer = regularizers[r];
    entry.ratios = grid_cell_ratios(user, entry.params, train_windows,
                                    dataset.schema().dimension());
    entry.trainable = is_trainable(entry.ratios);
  });
  return entries;
}

const ParamGridEntry& best_params(std::span<const ParamGridEntry> entries) {
  const ParamGridEntry* best = nullptr;
  for (const auto& entry : entries) {
    if (!entry.trainable) continue;
    if (best == nullptr || entry.ratios.acc() > best->ratios.acc()) best = &entry;
  }
  if (best == nullptr) {
    throw std::runtime_error{"best_params: no trainable grid entry"};
  }
  return *best;
}

std::vector<ProfileParams> optimize_all_users(
    const ProfilingDataset& dataset, const features::WindowConfig& window,
    ClassifierType type, std::span<const svm::KernelParams> kernels,
    std::span<const double> regularizers, util::ThreadPool& pool,
    GridSearchMode mode) {
  const MatrixByUser train_windows = all_train_matrices(dataset, window, pool);
  const auto& users = dataset.user_ids();
  const std::size_t grid_size = kernels.size() * regularizers.size();
  std::vector<std::vector<ParamGridEntry>> grids(
      users.size(), std::vector<ParamGridEntry>(grid_size));
  if (mode == GridSearchMode::kWarmPath) {
    // One task per (user, kernel); results land in fixed slots, so the
    // selection below is independent of scheduling and pool size.  Kernel
    // columns of the same user share that user's dot-row cache.
    std::vector<std::shared_ptr<svm::GramCache>> grams(users.size());
    for (std::size_t u = 0; u < users.size(); ++u) {
      const auto& own_windows = *train_windows.at(users[u]);
      if (!own_windows.empty()) {
        grams[u] = std::make_shared<svm::GramCache>(own_windows);
      }
    }
    util::parallel_for(pool, users.size() * kernels.size(), [&](std::size_t index) {
      const std::size_t u = index / kernels.size();
      const std::size_t k = index % kernels.size();
      auto column = regularizer_path_entries(users[u], type, kernels[k],
                                             regularizers, train_windows,
                                             dataset.schema().dimension(),
                                             grams[u]);
      std::move(column.begin(), column.end(),
                grids[u].begin() +
                    static_cast<std::ptrdiff_t>(k * regularizers.size()));
    });
  } else {
    util::parallel_for(pool, users.size() * grid_size, [&](std::size_t index) {
      const std::size_t u = index / grid_size;
      const std::size_t g = index % grid_size;
      const std::size_t k = g / regularizers.size();
      const std::size_t r = g % regularizers.size();
      ParamGridEntry& entry = grids[u][g];
      entry.params.type = type;
      entry.params.kernel = kernels[k];
      entry.params.regularizer = regularizers[r];
      entry.ratios = grid_cell_ratios(users[u], entry.params, train_windows,
                                      dataset.schema().dimension());
      entry.trainable = is_trainable(entry.ratios);
    });
  }
  std::vector<ProfileParams> chosen;
  chosen.reserve(users.size());
  for (const auto& grid : grids) chosen.push_back(best_params(grid).params);
  return chosen;
}

std::vector<UserProfile> train_profiles(const ProfilingDataset& dataset,
                                        const features::WindowConfig& window,
                                        std::span<const ProfileParams> params,
                                        util::ThreadPool& pool) {
  const auto& users = dataset.user_ids();
  if (params.size() != users.size()) {
    throw std::invalid_argument{"train_profiles: params/users size mismatch"};
  }
  std::vector<std::optional<UserProfile>> slots(users.size());
  std::mutex error_mutex;
  std::string first_error;
  util::parallel_for(pool, users.size(), [&](std::size_t u) {
    try {
      const auto windows = dataset.train_matrix(users[u], window);
      slots[u] = UserProfile::train(users[u], *windows,
                                    dataset.schema().dimension(), params[u]);
    } catch (const std::exception& e) {
      const std::lock_guard lock{error_mutex};
      if (first_error.empty()) first_error = users[u] + ": " + e.what();
    }
  });
  if (!first_error.empty()) {
    throw std::runtime_error{"train_profiles: " + first_error};
  }
  std::vector<UserProfile> profiles;
  profiles.reserve(users.size());
  for (auto& slot : slots) profiles.push_back(std::move(*slot));
  return profiles;
}

TestEvaluation evaluate_on_test(const ProfilingDataset& dataset,
                                const features::WindowConfig& window,
                                std::span<const UserProfile> profiles,
                                util::ThreadPool& pool) {
  const auto& users = dataset.user_ids();
  std::vector<std::shared_ptr<const util::FeatureMatrix>> per_user(users.size());
  util::parallel_for(pool, users.size(), [&](std::size_t u) {
    per_user[u] = dataset.test_matrix(users[u], window);
  });
  MatrixByUser test_windows;
  for (std::size_t u = 0; u < users.size(); ++u) {
    test_windows.emplace(users[u], std::move(per_user[u]));
  }
  TestEvaluation evaluation;
  evaluation.mean_ratios = mean_acceptance(profiles, test_windows);
  evaluation.confusion = compute_confusion(profiles, test_windows);
  return evaluation;
}

}  // namespace wtp::core
