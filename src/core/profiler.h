// UserProfiler: trains and applies per-user one-class profiles (the paper's
// §III-D usage of feature vectors with OC-SVM / SVDD).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "svm/model_io.h"
#include "svm/one_class_svm.h"
#include "svm/svdd.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::core {

enum class ClassifierType : std::uint8_t { kOcSvm, kSvdd };

[[nodiscard]] std::string_view to_string(ClassifierType type) noexcept;

/// The learning parameters of one user profile (the per-user output of the
/// paper's grid search): classifier family, kernel, and nu (OC-SVM) or C
/// (SVDD).
struct ProfileParams {
  ClassifierType type = ClassifierType::kOcSvm;
  svm::KernelParams kernel;
  double regularizer = 0.5;  ///< nu for OC-SVM, C for SVDD

  friend bool operator==(const ProfileParams&, const ProfileParams&) = default;
};

/// A trained user profile: the model plus its provenance.
class UserProfile {
 public:
  /// Trains a profile for `user_id` on its training window matrix (the
  /// canonical CSR data plane).  `dimension` is the schema dimension.
  /// Throws std::invalid_argument on empty training data or out-of-range
  /// parameters.
  [[nodiscard]] static UserProfile train(std::string user_id,
                                         const util::FeatureMatrix& windows,
                                         std::size_t dimension,
                                         const ProfileParams& params);
  /// Convenience overload that builds the matrix first.
  [[nodiscard]] static UserProfile train(std::string user_id,
                                         std::span<const util::SparseVector> windows,
                                         std::size_t dimension,
                                         const ProfileParams& params);

  /// Wraps an already-trained model (e.g. one cell of a warm-started
  /// fit_path sweep) into a profile.  `params` must describe how the model
  /// was trained; no validation against the model is possible here.
  [[nodiscard]] static UserProfile from_model(std::string user_id,
                                              const ProfileParams& params,
                                              svm::AnySvmModel model) {
    return UserProfile{std::move(user_id), params, std::move(model)};
  }

  [[nodiscard]] double decision_value(const util::SparseVector& window) const;
  /// Same, with the query's squared norm precomputed by the caller (serving:
  /// one norm per scored window shared across all profiles).
  [[nodiscard]] double decision_value(const util::SparseVector& window,
                                      double window_sqnorm) const;
  [[nodiscard]] bool accepts(const util::SparseVector& window) const {
    return decision_value(window) >= 0.0;
  }
  [[nodiscard]] bool accepts(const util::SparseVector& window,
                             double window_sqnorm) const {
    return decision_value(window, window_sqnorm) >= 0.0;
  }

  /// Batched decisions over every row of `windows` (the kernel_block path),
  /// bit-identical to per-row decision_value.  `out` needs windows.rows()
  /// elements.
  void decision_values(const util::FeatureMatrix& windows,
                       std::span<double> out) const;

  /// Fraction of `windows` accepted by the profile, in [0, 1].
  [[nodiscard]] double acceptance_ratio(
      std::span<const util::SparseVector> windows) const;
  /// Batch form over a window matrix: one kernel-row pass per window.
  /// `slack` widens the acceptance test to decision >= -slack; grid scoring
  /// uses it so training windows that are free support vectors (decision
  /// exactly 0 at the optimum) count as accepted regardless of which
  /// near-optimal point the solver stopped at.
  [[nodiscard]] double acceptance_ratio(const util::FeatureMatrix& windows,
                                        double slack = 0.0) const;

  [[nodiscard]] const std::string& user_id() const noexcept { return user_id_; }
  [[nodiscard]] const ProfileParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t support_vector_count() const;

  /// Persistence: profile header (user id + params) followed by the model.
  void save(std::ostream& out) const;
  [[nodiscard]] static UserProfile load(std::istream& in);

  /// Access the underlying model (for timing benchmarks).
  [[nodiscard]] const svm::AnySvmModel& model() const noexcept { return model_; }

 private:
  UserProfile(std::string user_id, ProfileParams params, svm::AnySvmModel model)
      : user_id_{std::move(user_id)}, params_{params}, model_{std::move(model)} {}

  std::string user_id_;
  ProfileParams params_;
  svm::AnySvmModel model_;
};

}  // namespace wtp::core
