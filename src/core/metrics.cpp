#include "core/metrics.h"

#include <stdexcept>

#include "obs/trace.h"

namespace wtp::core {

AcceptanceRatios profile_acceptance(const UserProfile& profile,
                                    const WindowsByUser& windows) {
  AcceptanceRatios ratios;
  double other_sum = 0.0;
  std::size_t other_count = 0;
  for (const auto& [user, user_windows] : windows) {
    const double accepted = profile.acceptance_ratio(user_windows) * 100.0;
    if (user == profile.user_id()) {
      ratios.acc_self = accepted;
    } else {
      other_sum += accepted;
      ++other_count;
    }
  }
  if (other_count > 0) ratios.acc_other = other_sum / static_cast<double>(other_count);
  return ratios;
}

AcceptanceRatios profile_acceptance(const UserProfile& profile,
                                    const MatrixByUser& windows, double slack) {
  AcceptanceRatios ratios;
  double other_sum = 0.0;
  std::size_t other_count = 0;
  for (const auto& [user, matrix] : windows) {
    const double accepted = profile.acceptance_ratio(*matrix, slack) * 100.0;
    if (user == profile.user_id()) {
      ratios.acc_self = accepted;
    } else {
      other_sum += accepted;
      ++other_count;
    }
  }
  if (other_count > 0) ratios.acc_other = other_sum / static_cast<double>(other_count);
  return ratios;
}

AcceptanceRatios mean_acceptance(std::span<const UserProfile> profiles,
                                 const WindowsByUser& windows) {
  if (profiles.empty()) {
    throw std::invalid_argument{"mean_acceptance: no profiles"};
  }
  AcceptanceRatios mean;
  for (const auto& profile : profiles) {
    const AcceptanceRatios ratios = profile_acceptance(profile, windows);
    mean.acc_self += ratios.acc_self;
    mean.acc_other += ratios.acc_other;
  }
  const auto n = static_cast<double>(profiles.size());
  mean.acc_self /= n;
  mean.acc_other /= n;
  return mean;
}

AcceptanceRatios mean_acceptance(std::span<const UserProfile> profiles,
                                 const MatrixByUser& windows) {
  if (profiles.empty()) {
    throw std::invalid_argument{"mean_acceptance: no profiles"};
  }
  AcceptanceRatios mean;
  for (const auto& profile : profiles) {
    const AcceptanceRatios ratios = profile_acceptance(profile, windows);
    mean.acc_self += ratios.acc_self;
    mean.acc_other += ratios.acc_other;
  }
  const auto n = static_cast<double>(profiles.size());
  mean.acc_self /= n;
  mean.acc_other /= n;
  return mean;
}

ConfusionMatrix compute_confusion(std::span<const UserProfile> profiles,
                                  const WindowsByUser& windows) {
  ConfusionMatrix matrix;
  for (const auto& [user, user_windows] : windows) {
    (void)user_windows;
    matrix.users.push_back(user);
  }
  matrix.cells.resize(profiles.size());
  for (std::size_t j = 0; j < profiles.size(); ++j) {
    const obs::TraceSpan span{"classify.profile_row", "classify",
                              static_cast<std::uint64_t>(j)};
    matrix.cells[j].reserve(matrix.users.size());
    for (const auto& user : matrix.users) {
      matrix.cells[j].push_back(
          profiles[j].acceptance_ratio(windows.at(user)) * 100.0);
    }
  }
  return matrix;
}

ConfusionMatrix compute_confusion(std::span<const UserProfile> profiles,
                                  const MatrixByUser& windows) {
  ConfusionMatrix matrix;
  for (const auto& [user, user_windows] : windows) {
    (void)user_windows;
    matrix.users.push_back(user);
  }
  matrix.cells.resize(profiles.size());
  for (std::size_t j = 0; j < profiles.size(); ++j) {
    const obs::TraceSpan span{"classify.profile_row", "classify",
                              static_cast<std::uint64_t>(j)};
    matrix.cells[j].reserve(matrix.users.size());
    for (const auto& user : matrix.users) {
      matrix.cells[j].push_back(
          profiles[j].acceptance_ratio(*windows.at(user)) * 100.0);
    }
  }
  return matrix;
}

double ConfusionMatrix::diagonal_mean() const {
  if (cells.empty()) return 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < cells.size() && i < users.size(); ++i) {
    sum += cells[i][i];
    ++count;
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

double ConfusionMatrix::off_diagonal_mean() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < cells.size(); ++j) {
    for (std::size_t i = 0; i < cells[j].size(); ++i) {
      if (i == j) continue;
      sum += cells[j][i];
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

double ConfusionMatrix::off_diagonal_zero_fraction() const {
  std::size_t zeros = 0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < cells.size(); ++j) {
    for (std::size_t i = 0; i < cells[j].size(); ++i) {
      if (i == j) continue;
      ++count;
      if (cells[j][i] == 0.0) ++zeros;
    }
  }
  return count ? static_cast<double>(zeros) / static_cast<double>(count) : 0.0;
}

double ConfusionMatrix::off_diagonal_below(double percent) const {
  std::size_t below = 0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < cells.size(); ++j) {
    for (std::size_t i = 0; i < cells[j].size(); ++i) {
      if (i == j) continue;
      ++count;
      if (cells[j][i] <= percent) ++below;
    }
  }
  return count ? static_cast<double>(below) / static_cast<double>(count) : 0.0;
}

}  // namespace wtp::core
