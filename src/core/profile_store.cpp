#include "core/profile_store.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "features/schema_io.h"

namespace wtp::core {

namespace {

constexpr const char* kMagic = "wtp_profile_store v1";

}  // namespace

ProfileStore::ProfileStore(features::WindowConfig window,
                           features::FeatureSchema schema,
                           std::vector<UserProfile> profiles)
    : window_{window}, schema_{std::move(schema)}, profiles_{std::move(profiles)} {
  find_index_.resize(profiles_.size());
  std::iota(find_index_.begin(), find_index_.end(), std::size_t{0});
  std::sort(find_index_.begin(), find_index_.end(),
            [this](std::size_t a, std::size_t b) {
              return profiles_[a].user_id() < profiles_[b].user_id();
            });
}

std::vector<std::string> ProfileStore::user_ids() const {
  std::vector<std::string> ids;
  ids.reserve(profiles_.size());
  for (const auto& profile : profiles_) ids.push_back(profile.user_id());
  return ids;
}

const UserProfile* ProfileStore::find(const std::string& user) const {
  const auto it = std::lower_bound(
      find_index_.begin(), find_index_.end(), user,
      [this](std::size_t index, const std::string& key) {
        return profiles_[index].user_id() < key;
      });
  if (it == find_index_.end() || profiles_[*it].user_id() != user) return nullptr;
  return &profiles_[*it];
}

void ProfileStore::save(std::ostream& out) const {
  out << kMagic << '\n';
  out << "window " << window_.duration_s << ' ' << window_.shift_s << '\n';
  features::save_schema(out, schema_);
  out << "profiles " << profiles_.size() << '\n';
  for (const auto& profile : profiles_) profile.save(out);
}

void ProfileStore::save_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"ProfileStore::save_file: cannot open '" + path + "'"};
  }
  save(out);
}

ProfileStore ProfileStore::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error{"ProfileStore::load: missing magic line"};
  }
  features::WindowConfig window;
  {
    if (!std::getline(in, line)) {
      throw std::runtime_error{"ProfileStore::load: missing window line"};
    }
    std::istringstream fields{line};
    std::string key;
    if (!(fields >> key >> window.duration_s >> window.shift_s) || key != "window") {
      throw std::runtime_error{"ProfileStore::load: malformed window line '" + line + "'"};
    }
  }
  features::FeatureSchema schema = features::load_schema(in);
  std::size_t count = 0;
  {
    if (!std::getline(in, line)) {
      throw std::runtime_error{"ProfileStore::load: missing profiles line"};
    }
    std::istringstream fields{line};
    std::string key;
    if (!(fields >> key >> count) || key != "profiles") {
      throw std::runtime_error{"ProfileStore::load: malformed profiles line '" + line + "'"};
    }
  }
  std::vector<UserProfile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    profiles.push_back(UserProfile::load(in));
  }
  return ProfileStore{window, std::move(schema), std::move(profiles)};
}

ProfileStore ProfileStore::load_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"ProfileStore::load_file: cannot open '" + path + "'"};
  }
  try {
    return load(in);
  } catch (const std::exception& e) {
    // Parse errors name the malformed line but not which file it came from;
    // tools loading several stores need the offending path.
    throw std::runtime_error{std::string{e.what()} + " (while loading '" + path +
                             "')"};
  }
}

}  // namespace wtp::core
