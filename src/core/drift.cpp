#include "core/drift.h"

#include <algorithm>
#include <stdexcept>

namespace wtp::core {

DriftMonitor::DriftMonitor(DriftConfig config)
    : config_{config}, ewma_{config.expected_rate} {
  if (config.expected_rate <= 0.0 || config.expected_rate > 1.0) {
    throw std::invalid_argument{"DriftMonitor: expected_rate must be in (0, 1]"};
  }
  if (config.ewma_alpha <= 0.0 || config.ewma_alpha > 1.0) {
    throw std::invalid_argument{"DriftMonitor: ewma_alpha must be in (0, 1]"};
  }
  if (config.cusum_threshold <= 0.0) {
    throw std::invalid_argument{"DriftMonitor: cusum_threshold must be > 0"};
  }
}

void DriftMonitor::observe(bool accepted) {
  ++count_;
  const double x = accepted ? 1.0 : 0.0;
  ewma_ += config_.ewma_alpha * (x - ewma_);
  // One-sided CUSUM on the shortfall below the expected rate.
  const double shortfall = (config_.expected_rate - x) - config_.slack;
  cusum_ = std::max(0.0, cusum_ + shortfall);
  if (count_ >= config_.warmup && cusum_ >= config_.cusum_threshold) {
    drifted_ = true;
  }
}

void DriftMonitor::reset() {
  ewma_ = config_.expected_rate;
  cusum_ = 0.0;
  count_ = 0;
  drifted_ = false;
}

void DriftMonitor::reset(double new_expected_rate) {
  if (new_expected_rate <= 0.0 || new_expected_rate > 1.0) {
    throw std::invalid_argument{
        "DriftMonitor::reset: expected_rate must be in (0, 1]"};
  }
  config_.expected_rate = new_expected_rate;
  reset();
}

}  // namespace wtp::core
