// ROC analysis over one-class decision scores.
//
// The paper reports a single operating point per model (TPR ~90%, FPR 7.3%
// for OC-SVM): the point induced by the decision threshold 0.  Sweeping the
// threshold over the continuous decision values exposes the whole
// TPR/FPR trade-off, which is what an operator tuning a continuous-
// authentication deployment actually needs.  Used by ablation A6.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wtp::core {

/// One point of an ROC curve.
struct RocPoint {
  double threshold = 0.0;  ///< accept when score >= threshold
  double tpr = 0.0;        ///< true positive rate (self windows accepted)
  double fpr = 0.0;        ///< false positive rate (other windows accepted)
};

/// Full ROC curve plus summary statistics.
struct RocCurve {
  std::vector<RocPoint> points;  ///< sorted by descending threshold
  double auc = 0.0;              ///< area under the curve (trapezoidal)

  /// The point whose threshold is closest to `threshold` (e.g. 0 = the
  /// models' natural operating point).
  [[nodiscard]] const RocPoint& at_threshold(double threshold) const;
  /// The point maximizing Youden's J = TPR - FPR.
  [[nodiscard]] const RocPoint& best_youden() const;
  /// Smallest FPR among points with TPR >= the given floor (1.0 when
  /// unattainable).
  [[nodiscard]] double fpr_at_tpr(double tpr_floor) const;
};

/// Builds the ROC curve from positive-class (profiled user) and negative-
/// class (other users) decision scores.  Throws std::invalid_argument when
/// either class is empty.
[[nodiscard]] RocCurve roc_curve(std::span<const double> positive_scores,
                                 std::span<const double> negative_scores);

/// AUC via the rank statistic (equivalent to the Mann-Whitney U estimator);
/// tolerates ties.  Same validity conditions as roc_curve.
[[nodiscard]] double roc_auc(std::span<const double> positive_scores,
                             std::span<const double> negative_scores);

}  // namespace wtp::core
