// Evaluation metrics of the paper (§IV-C, §V-A): self-acceptance,
// other-acceptance, global acceptance, and the 25x25 confusion matrix.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::core {

/// The paper's model-quality criteria: ACC_self must be maximized, ACC_other
/// minimized; ACC = ACC_self - ACC_other is the grid-search objective.
/// All values are percentages in [0, 100].
struct AcceptanceRatios {
  double acc_self = 0.0;
  double acc_other = 0.0;
  [[nodiscard]] double acc() const noexcept { return acc_self - acc_other; }
};

/// Windows per user: the evaluation corpus a set of profiles is scored on.
using WindowsByUser = std::map<std::string, std::vector<util::SparseVector>>;
/// CSR form of the same corpus: one shared FeatureMatrix per user (the
/// canonical data plane; the dataset's matrix cache hands these out).
using MatrixByUser =
    std::map<std::string, std::shared_ptr<const util::FeatureMatrix>>;

/// Acceptance ratios of one profile: self on its own user's windows, other
/// on everyone else's (macro-averaged over the other users, as the paper
/// averages per-user ratios).  Users absent from `windows` are skipped.
[[nodiscard]] AcceptanceRatios profile_acceptance(const UserProfile& profile,
                                                  const WindowsByUser& windows);
/// `slack` widens the acceptance test to decision >= -slack (see
/// UserProfile::acceptance_ratio); grid scoring uses it to decouple ACC
/// from which near-optimal point a solve stopped at.
[[nodiscard]] AcceptanceRatios profile_acceptance(const UserProfile& profile,
                                                  const MatrixByUser& windows,
                                                  double slack = 0.0);

/// Mean ratios over a set of profiles (the paper's "averages of the 25 user
/// results").
[[nodiscard]] AcceptanceRatios mean_acceptance(std::span<const UserProfile> profiles,
                                               const WindowsByUser& windows);
[[nodiscard]] AcceptanceRatios mean_acceptance(std::span<const UserProfile> profiles,
                                               const MatrixByUser& windows);

/// Tab. V: cell (j, i) = % of user_i's windows accepted by model m_j.
struct ConfusionMatrix {
  std::vector<std::string> users;        ///< row/column labels, sorted
  std::vector<std::vector<double>> cells;  ///< [model][test set], percent

  [[nodiscard]] double diagonal_mean() const;
  [[nodiscard]] double off_diagonal_mean() const;
  /// Fraction of off-diagonal cells that are exactly 0 (sparsity of Tab. V).
  [[nodiscard]] double off_diagonal_zero_fraction() const;
  /// Fraction of off-diagonal cells at or below `percent`.  The paper's
  /// exact-zero cells come from test sets of only a handful of windows;
  /// with thousands of test windows per user the scale-independent
  /// statement is "at most x% of windows accepted".
  [[nodiscard]] double off_diagonal_below(double percent) const;
};

[[nodiscard]] ConfusionMatrix compute_confusion(std::span<const UserProfile> profiles,
                                                const WindowsByUser& windows);
[[nodiscard]] ConfusionMatrix compute_confusion(std::span<const UserProfile> profiles,
                                                const MatrixByUser& windows);

}  // namespace wtp::core
