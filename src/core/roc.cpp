#include "core/roc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wtp::core {

const RocPoint& RocCurve::at_threshold(double threshold) const {
  if (points.empty()) throw std::logic_error{"RocCurve: empty curve"};
  const RocPoint* best = &points.front();
  for (const auto& point : points) {
    if (std::abs(point.threshold - threshold) <
        std::abs(best->threshold - threshold)) {
      best = &point;
    }
  }
  return *best;
}

const RocPoint& RocCurve::best_youden() const {
  if (points.empty()) throw std::logic_error{"RocCurve: empty curve"};
  const RocPoint* best = &points.front();
  for (const auto& point : points) {
    if (point.tpr - point.fpr > best->tpr - best->fpr) best = &point;
  }
  return *best;
}

double RocCurve::fpr_at_tpr(double tpr_floor) const {
  double best = 1.0;
  for (const auto& point : points) {
    if (point.tpr >= tpr_floor) best = std::min(best, point.fpr);
  }
  return best;
}

RocCurve roc_curve(std::span<const double> positive_scores,
                   std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument{"roc_curve: both classes must be non-empty"};
  }
  // Merge scores tagged by class, sort by descending score; sweeping the
  // threshold down through every distinct score traces the curve.
  struct Tagged {
    double score;
    bool positive;
  };
  std::vector<Tagged> all;
  all.reserve(positive_scores.size() + negative_scores.size());
  for (const double s : positive_scores) all.push_back({s, true});
  for (const double s : negative_scores) all.push_back({s, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.score > b.score; });

  const double p = static_cast<double>(positive_scores.size());
  const double n = static_cast<double>(negative_scores.size());
  RocCurve curve;
  curve.points.push_back({all.front().score + 1.0, 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < all.size();) {
    // Consume all entries tied at this score before emitting a point.
    const double score = all[i].score;
    while (i < all.size() && all[i].score == score) {
      (all[i].positive ? tp : fp) += 1;
      ++i;
    }
    curve.points.push_back(
        {score, static_cast<double>(tp) / p, static_cast<double>(fp) / n});
  }
  // Trapezoidal AUC over the swept points.
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const auto& a = curve.points[i - 1];
    const auto& b = curve.points[i];
    auc += (b.fpr - a.fpr) * (a.tpr + b.tpr) * 0.5;
  }
  curve.auc = auc;
  return curve;
}

double roc_auc(std::span<const double> positive_scores,
               std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument{"roc_auc: both classes must be non-empty"};
  }
  // Rank-based estimator with midrank tie handling.
  struct Tagged {
    double score;
    bool positive;
  };
  std::vector<Tagged> all;
  all.reserve(positive_scores.size() + negative_scores.size());
  for (const double s : positive_scores) all.push_back({s, true});
  for (const double s : negative_scores) all.push_back({s, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.score < b.score; });

  double rank_sum = 0.0;  // sum of positive ranks (1-based, midrank ties)
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].score == all[i].score) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // (i+1 + j)/2
    for (std::size_t k = i; k < j; ++k) {
      if (all[k].positive) rank_sum += midrank;
    }
    i = j;
  }
  const double p = static_cast<double>(positive_scores.size());
  const double n = static_cast<double>(negative_scores.size());
  return (rank_sum - p * (p + 1.0) / 2.0) / (p * n);
}

}  // namespace wtp::core
