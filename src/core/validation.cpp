#include "core/validation.h"

#include <stdexcept>

namespace wtp::core {

std::vector<std::pair<std::size_t, std::size_t>> fold_ranges(std::size_t count,
                                                             std::size_t folds) {
  if (folds == 0 || folds > count) {
    throw std::invalid_argument{"fold_ranges: need 1 <= folds <= count"};
  }
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(folds);
  const std::size_t base = count / folds;
  const std::size_t extra = count % folds;
  std::size_t begin = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    const std::size_t size = base + (f < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  return ranges;
}

ValidationResult cross_validate(const std::string& user,
                                std::span<const util::SparseVector> own_windows,
                                const WindowsByUser& other_windows,
                                std::size_t dimension,
                                const ProfileParams& params, std::size_t folds) {
  const auto ranges = fold_ranges(own_windows.size(), folds);
  ValidationResult result;
  for (const auto& [begin, end] : ranges) {
    // Train on everything outside [begin, end).
    std::vector<util::SparseVector> train;
    train.reserve(own_windows.size() - (end - begin));
    for (std::size_t i = 0; i < own_windows.size(); ++i) {
      if (i < begin || i >= end) train.push_back(own_windows[i]);
    }
    if (train.empty()) continue;
    const UserProfile profile =
        UserProfile::train(user, train, dimension, params);
    std::size_t accepted = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (profile.accepts(own_windows[i])) ++accepted;
    }
    result.fold_acc_self.push_back(100.0 * static_cast<double>(accepted) /
                                   static_cast<double>(end - begin));
  }
  if (result.fold_acc_self.empty()) {
    throw std::invalid_argument{"cross_validate: no evaluable fold"};
  }
  for (const double fold : result.fold_acc_self) result.acc_self += fold;
  result.acc_self /= static_cast<double>(result.fold_acc_self.size());

  // Other-acceptance: the deployable (full-data) model against other users.
  const UserProfile full = UserProfile::train(user, own_windows, dimension, params);
  double other_sum = 0.0;
  std::size_t other_count = 0;
  for (const auto& [other_user, windows] : other_windows) {
    if (other_user == user || windows.empty()) continue;
    other_sum += 100.0 * full.acceptance_ratio(windows);
    ++other_count;
  }
  if (other_count > 0) {
    result.acc_other = other_sum / static_cast<double>(other_count);
  }
  return result;
}

ProfileParams select_by_cross_validation(
    const std::string& user, std::span<const util::SparseVector> own_windows,
    const WindowsByUser& other_windows, std::size_t dimension,
    std::span<const ProfileParams> candidates, std::size_t folds) {
  const ProfileParams* best = nullptr;
  double best_acc = 0.0;
  for (const auto& params : candidates) {
    try {
      const ValidationResult result = cross_validate(
          user, own_windows, other_windows, dimension, params, folds);
      if (best == nullptr || result.acc() > best_acc) {
        best = &params;
        best_acc = result.acc();
      }
    } catch (const std::invalid_argument&) {
      // Untrainable setting: skip.
    }
  }
  if (best == nullptr) {
    throw std::runtime_error{"select_by_cross_validation: no trainable candidate"};
  }
  return *best;
}

}  // namespace wtp::core
