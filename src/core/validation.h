// Chronological k-fold validation for one-class profile selection.
//
// The paper's grid search (§IV-C) scores ACC_self on the very windows the
// model was trained on, which favours configurations that overfit (a model
// accepting 100% of its training windows looks perfect on that axis).
// This module offers the sounder alternative: split the profiled user's
// training windows into k contiguous (chronological) folds, train on k-1,
// score self-acceptance on the held-out fold, and average — while
// other-acceptance is still scored against the other users' windows.
// Because the folds are contiguous in time, no future window ever
// influences the model that judges it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/metrics.h"
#include "core/profiler.h"
#include "util/sparse_vector.h"

namespace wtp::core {

struct ValidationResult {
  /// Mean held-out self-acceptance over folds, percent.
  double acc_self = 0.0;
  /// Other-acceptance of the final full-data model, percent (macro-averaged
  /// over other users).
  double acc_other = 0.0;
  /// Per-fold held-out self-acceptance, percent (size = folds evaluated).
  std::vector<double> fold_acc_self;

  [[nodiscard]] double acc() const noexcept { return acc_self - acc_other; }
};

/// Contiguous index ranges [begin, end) of `count` items split into `folds`
/// near-equal parts (the first `count % folds` parts get one extra item).
/// Throws std::invalid_argument when folds == 0 or folds > count.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> fold_ranges(
    std::size_t count, std::size_t folds);

/// Runs the k-fold protocol for one user and one parameter setting.
/// `own_windows` are the user's training windows in chronological order;
/// `other_windows` maps every *other* user to their windows (the profiled
/// user's own entry, if present, is ignored).  Folds whose training part
/// would be empty are skipped; throws std::invalid_argument when no fold
/// is evaluable.
[[nodiscard]] ValidationResult cross_validate(
    const std::string& user, std::span<const util::SparseVector> own_windows,
    const WindowsByUser& other_windows, std::size_t dimension,
    const ProfileParams& params, std::size_t folds = 5);

/// Picks the parameter setting with the best cross-validated ACC.
/// Untrainable settings are skipped; throws std::runtime_error when every
/// setting fails.
[[nodiscard]] ProfileParams select_by_cross_validation(
    const std::string& user, std::span<const util::SparseVector> own_windows,
    const WindowsByUser& other_windows, std::size_t dimension,
    std::span<const ProfileParams> candidates, std::size_t folds = 5);

}  // namespace wtp::core
