// Temporal-consistency analysis (paper §IV-B, Figs. 1-2).
//
// For an epoch delimiter t, a user's transactions split into "observed"
// (before t) and "subsequent" (after t).  Two novelty measures:
//   * feature novelty (Fig. 1): per feature category (category /
//     application_type / media_type), the fraction of distinct values seen
//     in the subsequent set that never occurred in the observed set;
//   * window novelty (Fig. 2): the fraction of subsequent-set window
//     feature vectors that are not exactly equal to any observed-set
//     window vector.
// Both are averaged (with variance) over all users for t = 1..N weeks.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "features/schema.h"
#include "features/window.h"
#include "log/transaction.h"
#include "util/time.h"

namespace wtp::core {

/// Which transaction field a feature-novelty series tracks.
enum class NoveltyField : std::uint8_t { kCategory, kApplicationType, kMediaType };

[[nodiscard]] std::string_view to_string(NoveltyField field) noexcept;

/// One point of a novelty curve: statistics over users at epoch week `week`.
struct NoveltyPoint {
  int week = 0;
  double mean = 0.0;
  double variance = 0.0;
  std::size_t users = 0;  ///< users contributing (non-empty subsequent set)
};

/// Fig. 1: novelty-ratio curves for the three largest feature categories.
/// `by_user` maps user id -> time-sorted transactions; weeks are measured
/// from `epoch_base` (typically the trace start).
[[nodiscard]] std::map<NoveltyField, std::vector<NoveltyPoint>> feature_novelty(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user,
    util::UnixSeconds epoch_base, int first_week, int last_week);

/// Fig. 2: window-novelty curve under a window configuration.
[[nodiscard]] std::vector<NoveltyPoint> window_novelty(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user,
    const features::FeatureSchema& schema, const features::WindowConfig& window,
    util::UnixSeconds epoch_base, int first_week, int last_week);

/// The paper's footprint statistic (§IV-B): average count of distinct
/// values observed per user over their whole trace, per field.
struct FootprintStats {
  double mean_categories = 0.0;
  double mean_sub_types = 0.0;
  double mean_application_types = 0.0;
};

[[nodiscard]] FootprintStats user_footprints(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user);

}  // namespace wtp::core
