// ProfileStore: the deployable artifact of the training pipeline.
//
// A set of trained user profiles is only usable together with (a) the
// feature schema that defined their columns and (b) the window
// configuration they were trained at.  The store bundles all three into one
// file so the monitoring side (wtp_classify / wtp_identify, or an embedding
// application) can encode fresh proxy logs identically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "features/schema.h"
#include "features/window.h"

namespace wtp::core {

class ProfileStore {
 public:
  ProfileStore(features::WindowConfig window, features::FeatureSchema schema,
               std::vector<UserProfile> profiles);

  [[nodiscard]] const features::WindowConfig& window() const noexcept {
    return window_;
  }
  [[nodiscard]] const features::FeatureSchema& schema() const noexcept {
    return schema_;
  }
  [[nodiscard]] const std::vector<UserProfile>& profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] std::vector<std::string> user_ids() const;

  /// Profile for a user, or nullptr when unknown.  O(log n): binary search
  /// over an index built once at construction, so per-window lookups in the
  /// serving engine don't degrade with user count.
  [[nodiscard]] const UserProfile* find(const std::string& user) const;

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  /// Throws std::runtime_error on malformed input.
  [[nodiscard]] static ProfileStore load(std::istream& in);
  [[nodiscard]] static ProfileStore load_file(const std::string& path);

 private:
  features::WindowConfig window_;
  features::FeatureSchema schema_;
  std::vector<UserProfile> profiles_;
  std::vector<std::size_t> find_index_;  ///< profile indices sorted by user_id
};

}  // namespace wtp::core
