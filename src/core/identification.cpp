#include "core/identification.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/trace.h"

namespace wtp::core {

bool IdentificationEvent::accepted(const std::string& user) const {
  return std::find(accepted_by.begin(), accepted_by.end(), user) !=
         accepted_by.end();
}

UserIdentifier::UserIdentifier(std::span<const UserProfile> profiles,
                               const features::FeatureSchema& schema,
                               features::WindowConfig window)
    : profiles_{profiles}, schema_{&schema}, window_{window} {
  if (profiles.empty()) {
    throw std::invalid_argument{"UserIdentifier: no profiles"};
  }
}

std::vector<IdentificationEvent> UserIdentifier::monitor(
    std::span<const log::WebTransaction> device_txns) const {
  const features::WindowAggregator aggregator{*schema_, window_};
  const std::vector<features::Window> windows = aggregator.aggregate(device_txns);

  std::vector<IdentificationEvent> events;
  events.reserve(windows.size());
  std::size_t cursor = 0;  // first txn not yet before the current window
  for (const auto& window : windows) {
    const obs::TraceSpan span{
        "identify.window", "identify",
        static_cast<std::uint64_t>(window.transaction_count)};
    IdentificationEvent event;
    event.window_start = window.start;
    event.window_end = window.end;
    event.transaction_count = window.transaction_count;

    // Ground truth: the user with the most transactions in the window.
    while (cursor < device_txns.size() &&
           device_txns[cursor].timestamp < window.start) {
      ++cursor;
    }
    std::map<std::string, std::size_t> producers;
    for (std::size_t i = cursor;
         i < device_txns.size() && device_txns[i].timestamp < window.end; ++i) {
      ++producers[device_txns[i].user_id];
    }
    std::size_t best_count = 0;
    for (const auto& [user, count] : producers) {
      if (count > best_count) {
        best_count = count;
        event.true_user = user;
      }
    }

    for (const auto& profile : profiles_) {
      if (profile.accepts(window.features)) {
        event.accepted_by.push_back(profile.user_id());
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::string UserIdentifier::decide_single(const IdentificationEvent& event) {
  return event.accepted_by.size() == 1 ? event.accepted_by.front() : std::string{};
}

std::string UserIdentifier::decide_consecutive(
    std::span<const IdentificationEvent> recent_events, std::size_t run_length) {
  if (run_length == 0 || recent_events.size() < run_length) return {};
  const auto tail = recent_events.last(run_length);
  // Candidates: models accepting the newest window; keep those accepting all.
  std::string winner;
  std::size_t winners = 0;
  for (const auto& candidate : tail.back().accepted_by) {
    const bool all = std::all_of(
        tail.begin(), tail.end(),
        [&candidate](const IdentificationEvent& e) { return e.accepted(candidate); });
    if (all) {
      winner = candidate;
      ++winners;
    }
  }
  return winners == 1 ? winner : std::string{};
}

IdentificationMetrics summarize_events(
    std::span<const IdentificationEvent> events) {
  IdentificationMetrics metrics;
  metrics.windows = events.size();
  for (const auto& event : events) {
    if (!event.true_user.empty() && event.accepted(event.true_user)) {
      ++metrics.true_user_hits;
    }
    const std::string decision = UserIdentifier::decide_single(event);
    if (!decision.empty()) {
      ++metrics.decided;
      if (decision == event.true_user) ++metrics.correct;
    }
  }
  return metrics;
}

std::vector<SmoothingPoint> smoothing_sweep(
    std::span<const IdentificationEvent> events,
    std::span<const std::size_t> run_lengths) {
  std::vector<SmoothingPoint> points;
  points.reserve(run_lengths.size());
  for (const std::size_t run_length : run_lengths) {
    SmoothingPoint point;
    point.run_length = run_length;
    for (std::size_t end = run_length; end <= events.size(); ++end) {
      const auto recent = events.subspan(end - run_length, run_length);
      const std::string decision =
          UserIdentifier::decide_consecutive(recent, run_length);
      if (decision.empty()) continue;
      ++point.decided;
      if (decision == recent.back().true_user) ++point.correct;
    }
    points.push_back(point);
  }
  return points;
}

ArgmaxDecision argmax_decision(std::span<const UserProfile> profiles,
                               const util::SparseVector& window,
                               double window_sqnorm) {
  ArgmaxDecision best;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const double value = profiles[i].decision_value(window, window_sqnorm);
    // Strictly-greater keeps the first of tied profiles, matching the
    // cascade's ascending-order scoring (index/cascade.cpp).
    if (best.index == ArgmaxDecision::npos || value > best.value) {
      best.index = i;
      best.value = value;
    }
  }
  return best;
}

ArgmaxDecision argmax_decision(std::span<const UserProfile> profiles,
                               const util::SparseVector& window) {
  return argmax_decision(profiles, window, window.squared_norm());
}

}  // namespace wtp::core
