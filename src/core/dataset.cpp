#include "core/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace wtp::core {

ProfilingDataset::ProfilingDataset(std::vector<log::WebTransaction> transactions,
                                   DatasetConfig config)
    : config_{config} {
  if (config.train_fraction <= 0.0 || config.train_fraction >= 1.0) {
    throw std::invalid_argument{"ProfilingDataset: train_fraction must be in (0,1)"};
  }
  // The schema is built over the full dataset, as in the paper (§IV-A).
  schema_ = features::FeatureSchema::from_transactions(transactions);
  by_device_ = features::group_by_device(transactions);

  auto by_user = features::group_by_user(transactions);

  // Filter users below the transaction threshold, then keep the most active
  // `max_users`.
  std::vector<std::pair<std::string, std::size_t>> eligible;
  for (const auto& [user, txns] : by_user) {
    if (txns.size() >= config.min_transactions) eligible.emplace_back(user, txns.size());
  }
  std::sort(eligible.begin(), eligible.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (config.max_users > 0 && eligible.size() > config.max_users) {
    eligible.resize(config.max_users);
  }

  for (auto& [user, count] : eligible) {
    UserData data;
    data.transactions = std::move(by_user[user]);
    data.train_count = static_cast<std::size_t>(
        config.train_fraction * static_cast<double>(count));
    users_.emplace(user, std::move(data));
  }
  for (const auto& [user, data] : users_) {
    (void)data;
    user_ids_.push_back(user);
  }
}

const ProfilingDataset::UserData& ProfilingDataset::user_data(
    const std::string& user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) {
    throw std::out_of_range{"ProfilingDataset: unknown user '" + user + "'"};
  }
  return it->second;
}

std::span<const log::WebTransaction> ProfilingDataset::train_transactions(
    const std::string& user) const {
  const UserData& data = user_data(user);
  return std::span{data.transactions}.first(data.train_count);
}

std::span<const log::WebTransaction> ProfilingDataset::test_transactions(
    const std::string& user) const {
  const UserData& data = user_data(user);
  return std::span{data.transactions}.subspan(data.train_count);
}

std::span<const log::WebTransaction> ProfilingDataset::all_transactions(
    const std::string& user) const {
  return user_data(user).transactions;
}

std::vector<util::SparseVector> ProfilingDataset::subsample(
    std::vector<util::SparseVector> vectors, std::size_t max_count) {
  if (max_count == 0 || vectors.size() <= max_count) return vectors;
  std::vector<util::SparseVector> sampled;
  sampled.reserve(max_count);
  const double stride =
      static_cast<double>(vectors.size()) / static_cast<double>(max_count);
  for (std::size_t i = 0; i < max_count; ++i) {
    sampled.push_back(std::move(vectors[static_cast<std::size_t>(
        static_cast<double>(i) * stride)]));
  }
  return sampled;
}

std::vector<util::SparseVector> ProfilingDataset::train_windows(
    const std::string& user, const features::WindowConfig& window) const {
  const features::WindowAggregator aggregator{schema_, window};
  auto vectors = features::window_vectors(aggregator.aggregate(train_transactions(user)));
  return subsample(std::move(vectors), config_.max_training_windows);
}

std::vector<util::SparseVector> ProfilingDataset::test_windows(
    const std::string& user, const features::WindowConfig& window) const {
  const features::WindowAggregator aggregator{schema_, window};
  return features::window_vectors(aggregator.aggregate(test_transactions(user)));
}

std::shared_ptr<const util::FeatureMatrix> ProfilingDataset::cached_matrix(
    const std::string& user, const features::WindowConfig& window,
    bool train) const {
  const MatrixKey key{window.duration_s, window.shift_s, train, user};
  {
    const std::lock_guard lock{matrix_cache_->mutex};
    const auto it = matrix_cache_->entries.find(key);
    if (it != matrix_cache_->entries.end()) return it->second;
  }
  // Window outside the lock: concurrent misses on the same key may both
  // compute, but they produce identical matrices and the first insert wins.
  const auto vectors =
      train ? train_windows(user, window) : test_windows(user, window);
  auto built = util::FeatureMatrix::from_rows(vectors, schema_.dimension());
  // Schema-derived bitset layout: every per-user matrix shares it, so the
  // batched kernel paths borrow query encodings zero-copy (DESIGN §11).
  built.ensure_bitset(schema_.numeric_columns());
  auto matrix = std::make_shared<const util::FeatureMatrix>(std::move(built));
  const std::lock_guard lock{matrix_cache_->mutex};
  return matrix_cache_->entries.emplace(key, std::move(matrix)).first->second;
}

std::shared_ptr<const util::FeatureMatrix> ProfilingDataset::train_matrix(
    const std::string& user, const features::WindowConfig& window) const {
  return cached_matrix(user, window, /*train=*/true);
}

std::shared_ptr<const util::FeatureMatrix> ProfilingDataset::test_matrix(
    const std::string& user, const features::WindowConfig& window) const {
  return cached_matrix(user, window, /*train=*/false);
}

std::map<std::string, std::size_t> ProfilingDataset::transaction_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const auto& [user, data] : users_) counts[user] = data.transactions.size();
  return counts;
}

}  // namespace wtp::core
