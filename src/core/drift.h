// Profile drift detection (operationalizing the paper's future-work note on
// seasonal behaviour, §VII).
//
// A deployed profile goes stale when the user's behaviour shifts: the
// profile's self-acceptance rate sags below its training-time level.  The
// DriftMonitor tracks the acceptance of the profiled user's own windows
// with an exponentially-weighted moving average plus a CUSUM-style
// accumulator, and signals when re-training is due.
#pragma once

#include <cstddef>

namespace wtp::core {

struct DriftConfig {
  /// Expected self-acceptance rate (e.g. the validation ACC_self / 100).
  double expected_rate = 0.9;
  /// EWMA smoothing factor per observation.
  double ewma_alpha = 0.05;
  /// Slack subtracted from the shortfall before it accumulates (the CUSUM
  /// reference value: half the acceptance-rate drop worth detecting, so
  /// the default targets drops of ~0.4 and tolerates smaller wobble).
  double slack = 0.2;
  /// Accumulated shortfall (in acceptance-rate units) that triggers drift
  /// (the CUSUM decision interval h).
  double cusum_threshold = 5.0;
  /// Minimum observations before drift may be signalled.
  std::size_t warmup = 30;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = {});

  /// Feeds the outcome of one self-window classification (true = the
  /// profile accepted its own user's window).
  void observe(bool accepted);

  /// Current smoothed acceptance estimate (starts at expected_rate).
  [[nodiscard]] double acceptance_estimate() const noexcept { return ewma_; }
  /// Accumulated CUSUM shortfall.
  [[nodiscard]] double cusum() const noexcept { return cusum_; }
  /// True once the accumulated shortfall crossed the threshold (sticky
  /// until reset()).
  [[nodiscard]] bool drift_detected() const noexcept { return drifted_; }
  [[nodiscard]] std::size_t observations() const noexcept { return count_; }

  /// Clears all state (call after retraining the profile).
  void reset();

  /// Clears all state AND re-baselines the expected self-acceptance rate —
  /// the retraining loop calls this with the fresh profile's acceptance on
  /// its own training windows, so the monitor tracks the profile actually
  /// deployed rather than the original validation figure.  Throws
  /// std::invalid_argument outside (0, 1].
  void reset(double new_expected_rate);

  [[nodiscard]] const DriftConfig& config() const noexcept { return config_; }

 private:
  DriftConfig config_;
  double ewma_;
  double cusum_ = 0.0;
  std::size_t count_ = 0;
  bool drifted_ = false;
};

}  // namespace wtp::core
