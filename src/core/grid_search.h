// Learning-parameter optimization (paper §IV-C).
//
// Two stages, exactly as in the paper:
//   1. Global window grid (Tab. II): window duration D and shift S are
//      optimized once for all users, with a fixed classifier configuration
//      (the paper uses SVDD, linear kernel, C = 0.5).  ACC_self is computed
//      on the training windows themselves; ACC_other against the other
//      users' training windows.
//   2. Per-user parameter grid (Tab. III): with (D, S) fixed, each user's
//      kernel and nu/C are chosen to maximize ACC = ACC_self - ACC_other.
#pragma once

#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/metrics.h"
#include "core/profiler.h"
#include "features/window.h"
#include "util/thread_pool.h"

namespace wtp::core {

/// The paper's Tab. II / Tab. IV window grid.
[[nodiscard]] std::vector<features::WindowConfig> paper_window_grid();

/// The paper's Tab. III regularizer column (0.999 .. 0.001).
[[nodiscard]] std::vector<double> paper_regularizer_grid();

/// All four kernels of Tab. III.
[[nodiscard]] std::vector<svm::KernelParams> paper_kernel_grid(double gamma = 0.0);

struct WindowGridEntry {
  features::WindowConfig window;
  AcceptanceRatios ratios;  ///< averaged over all users
};

/// Stage 1 (Tab. II): evaluates each window configuration with fixed
/// `base_params`, averaging ratios over all dataset users.  Parallel over
/// (window, user) pairs.  Infeasible/failed trainings contribute 0/100 (a
/// maximally bad score) rather than aborting the sweep.
[[nodiscard]] std::vector<WindowGridEntry> window_grid_search(
    const ProfilingDataset& dataset,
    std::span<const features::WindowConfig> window_grid,
    const ProfileParams& base_params, util::ThreadPool& pool);

/// Best entry by ACC_self (the paper's Tab. II retention criterion: D=60s,
/// S=30s wins on self-acceptance despite D=10m winning on ACC).
[[nodiscard]] const WindowGridEntry& best_by_acc_self(
    std::span<const WindowGridEntry> entries);
/// Best entry by global ACC.
[[nodiscard]] const WindowGridEntry& best_by_acc(
    std::span<const WindowGridEntry> entries);

struct ParamGridEntry {
  ProfileParams params;
  AcceptanceRatios ratios;
  bool trainable = true;  ///< false when training failed (infeasible config)
};

/// How stage 2 trains the cells of one kernel's regularizer column.
///   kWarmPath:    one fit_path sweep per (user, kernel) — a shared QMatrix
///                 and kernel cache across the column, each solve seeded
///                 from the previous cell (the production path).
///   kColdPerCell: every cell trains from scratch (the seed behaviour);
///                 kept as the reference the determinism regression test
///                 compares the warm path against.
enum class GridSearchMode : std::uint8_t { kWarmPath, kColdPerCell };

/// Stage 2 (Tab. III): full kernel x regularizer grid for one user at a
/// fixed window configuration.  Ratios are computed on training windows, as
/// in stage 1.  Results are ordered kernel-major, regularizer-minor.
[[nodiscard]] std::vector<ParamGridEntry> param_grid_search(
    const ProfilingDataset& dataset, const std::string& user,
    const features::WindowConfig& window, ClassifierType type,
    std::span<const svm::KernelParams> kernels,
    std::span<const double> regularizers, util::ThreadPool& pool,
    GridSearchMode mode = GridSearchMode::kWarmPath);

/// Best trainable entry by ACC (ties: first in grid order).  Throws
/// std::runtime_error when nothing was trainable.
[[nodiscard]] const ParamGridEntry& best_params(
    std::span<const ParamGridEntry> entries);

/// Runs stage 2 for every user and returns the chosen per-user parameters,
/// aligned with dataset.user_ids().
[[nodiscard]] std::vector<ProfileParams> optimize_all_users(
    const ProfilingDataset& dataset, const features::WindowConfig& window,
    ClassifierType type, std::span<const svm::KernelParams> kernels,
    std::span<const double> regularizers, util::ThreadPool& pool,
    GridSearchMode mode = GridSearchMode::kWarmPath);

/// Trains final profiles for all users with their optimized parameters.
[[nodiscard]] std::vector<UserProfile> train_profiles(
    const ProfilingDataset& dataset, const features::WindowConfig& window,
    std::span<const ProfileParams> params, util::ThreadPool& pool);

/// Test-set evaluation (Tab. IV / Tab. V): feeds every user's *test*
/// windows to every profile.
struct TestEvaluation {
  AcceptanceRatios mean_ratios;
  ConfusionMatrix confusion;
};
[[nodiscard]] TestEvaluation evaluate_on_test(const ProfilingDataset& dataset,
                                              const features::WindowConfig& window,
                                              std::span<const UserProfile> profiles,
                                              util::ThreadPool& pool);

}  // namespace wtp::core
