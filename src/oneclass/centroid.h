// Mean-centroid baseline: accept x when its Euclidean distance to the
// training mean is within the radius covering (1 - outlier_fraction) of the
// training data.  The simplest possible profile; used as the sanity floor in
// the alternative-models ablation.
#pragma once

#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

class CentroidModel final : public OneClassModel {
 public:
  explicit CentroidModel(double outlier_fraction = 0.1);

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "centroid"; }

  [[nodiscard]] double radius() const noexcept { return radius_; }

 private:
  [[nodiscard]] double distance_to_mean(const util::SparseVector& x) const;
  [[nodiscard]] double distance_to_mean(std::span<const std::uint32_t> indices,
                                        std::span<const double> values,
                                        double sq_norm) const;

  double outlier_fraction_;
  std::vector<double> mean_;
  double mean_sqnorm_ = 0.0;
  double radius_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
