#include "oneclass/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace wtp::oneclass {

KnnModel::KnnModel(std::size_t k, double outlier_fraction)
    : k_{k}, outlier_fraction_{outlier_fraction} {
  if (k == 0) throw std::invalid_argument{"KnnModel: k must be > 0"};
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"KnnModel: outlier_fraction must be in [0, 1)"};
  }
}

void KnnModel::fit(std::span<const util::SparseVector> data, std::size_t dimension) {
  (void)dimension;  // metric model: no dense expansion needed
  if (data.empty()) throw std::invalid_argument{"KnnModel::fit: empty data"};
  points_.assign(data.begin(), data.end());
  sq_norms_.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    sq_norms_[i] = points_[i].squared_norm();
  }
  fitted_ = true;

  // Leave-one-out calibration: each training point's k-th neighbour among
  // the *other* points.
  std::vector<double> scores;
  scores.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    scores.push_back(-kth_distance_internal(points_[i], i));
  }
  threshold_ = -quantile_threshold(scores, outlier_fraction_);
}

double KnnModel::kth_distance_internal(const util::SparseVector& x,
                                       std::size_t skip_index) const {
  // Max-heap of the k smallest squared distances seen so far.
  std::priority_queue<double> heap;
  const double x_sqnorm = x.squared_norm();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i == skip_index) continue;
    const double sq =
        std::max(0.0, sq_norms_[i] + x_sqnorm - 2.0 * points_[i].dot(x));
    if (heap.size() < k_) {
      heap.push(sq);
    } else if (sq < heap.top()) {
      heap.pop();
      heap.push(sq);
    }
  }
  if (heap.empty()) return 0.0;  // single-point training set
  return std::sqrt(heap.top());
}

double KnnModel::kth_distance(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"KnnModel: distance before fit"};
  return kth_distance_internal(x, points_.size());
}

double KnnModel::decision_value(const util::SparseVector& x) const {
  return threshold_ - kth_distance(x);
}

}  // namespace wtp::oneclass
