#include "oneclass/knn.h"

#include "svm/kernel.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

namespace wtp::oneclass {

KnnModel::KnnModel(std::size_t k, double outlier_fraction)
    : k_{k}, outlier_fraction_{outlier_fraction} {
  if (k == 0) throw std::invalid_argument{"KnnModel: k must be > 0"};
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"KnnModel: outlier_fraction must be in [0, 1)"};
  }
}

void KnnModel::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  (void)dimension;  // metric model: no dense expansion needed
  if (data.empty()) throw std::invalid_argument{"KnnModel::fit: empty data"};
  points_ = data;
  fitted_ = true;

  // Leave-one-out calibration: each training point's k-th neighbour among
  // the *other* points.  One dot_all pass per point replaces n merge-join
  // dots; the shared squared norms come cached with the matrix.
  std::vector<double> scores;
  scores.reserve(points_.rows());
  std::vector<double> sq_dists(points_.rows());
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    svm::dot_rows(points_, i, sq_dists);
    const double x_sqnorm = points_.sq_norm(i);
    for (std::size_t j = 0; j < points_.rows(); ++j) {
      sq_dists[j] = std::max(0.0, points_.sq_norm(j) + x_sqnorm - 2.0 * sq_dists[j]);
    }
    scores.push_back(-kth_from_sq_dists(sq_dists, i));
  }
  threshold_ = -quantile_threshold(scores, outlier_fraction_);
}

void KnnModel::sq_dists_to_all(const util::SparseVector& x,
                               std::span<double> out) const {
  svm::dot_rows(points_, x, out);
  const double x_sqnorm = x.squared_norm();
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    out[i] = std::max(0.0, points_.sq_norm(i) + x_sqnorm - 2.0 * out[i]);
  }
}

double KnnModel::kth_from_sq_dists(std::span<const double> sq_dists,
                                   std::size_t skip_index) const {
  // Max-heap of the k smallest squared distances seen so far.
  std::priority_queue<double> heap;
  for (std::size_t i = 0; i < sq_dists.size(); ++i) {
    if (i == skip_index) continue;
    const double sq = sq_dists[i];
    if (heap.size() < k_) {
      heap.push(sq);
    } else if (sq < heap.top()) {
      heap.pop();
      heap.push(sq);
    }
  }
  if (heap.empty()) return 0.0;  // single-point training set
  return std::sqrt(heap.top());
}

double KnnModel::kth_distance(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"KnnModel: distance before fit"};
  thread_local std::vector<double> sq_dists;
  sq_dists.resize(points_.rows());
  sq_dists_to_all(x, sq_dists);
  return kth_from_sq_dists(sq_dists, points_.rows());
}

double KnnModel::decision_value(const util::SparseVector& x) const {
  return threshold_ - kth_distance(x);
}

}  // namespace wtp::oneclass
