// Parzen-window (kernel density) profile: the acceptance score of x is the
// mean RBF kernel to the training windows; the threshold is the training
// quantile at the configured outlier fraction.  Another "probabilistic
// model" candidate from the paper's future work.
#pragma once

#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

class KdeModel final : public OneClassModel {
 public:
  /// bandwidth_gamma <= 0 resolves to 1/dimension at fit time.
  explicit KdeModel(double outlier_fraction = 0.1, double bandwidth_gamma = 0.0);

  void fit(std::span<const util::SparseVector> data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "kde"; }

  [[nodiscard]] double density(const util::SparseVector& x) const;
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  double outlier_fraction_;
  double gamma_;
  std::vector<util::SparseVector> points_;
  std::vector<double> sq_norms_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
