// Parzen-window (kernel density) profile: the acceptance score of x is the
// mean RBF kernel to the training windows; the threshold is the training
// quantile at the configured outlier fraction.  Another "probabilistic
// model" candidate from the paper's future work.
#pragma once

#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

class KdeModel final : public OneClassModel {
 public:
  /// bandwidth_gamma <= 0 resolves to 1/dimension at fit time.
  explicit KdeModel(double outlier_fraction = 0.1, double bandwidth_gamma = 0.0);

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "kde"; }

  [[nodiscard]] double density(const util::SparseVector& x) const;
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  /// Mean RBF kernel over batched dot products (dots[i] = points_[i] . x).
  [[nodiscard]] double density_from_dots(std::span<const double> dots,
                                         double x_sqnorm) const;

  double outlier_fraction_;
  double gamma_;
  util::FeatureMatrix points_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
