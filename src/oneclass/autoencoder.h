// From-scratch MLP auto-encoder for one-class classification (the paper's
// future-work extension §VII).
//
// Architecture: dense dim -> hidden -> dim with sigmoid activations (inputs
// are in [0,1]).  Trained with Adam on mean-squared reconstruction error;
// a window is accepted when its reconstruction error is within the
// (1 - outlier_fraction) training quantile.  Fully deterministic given the
// seed.
#pragma once

#include <cstdint>
#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

struct AutoencoderConfig {
  std::size_t hidden_units = 32;
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  double learning_rate = 1e-2;
  double outlier_fraction = 0.1;
  std::uint64_t seed = 7;
};

class AutoencoderModel final : public OneClassModel {
 public:
  explicit AutoencoderModel(AutoencoderConfig config = {});

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "autoencoder"; }

  /// Mean squared reconstruction error of x (lower = more "inside").
  [[nodiscard]] double reconstruction_error(const util::SparseVector& x) const;
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  /// Training loss after the final epoch (for convergence tests).
  [[nodiscard]] double final_loss() const noexcept { return final_loss_; }

 private:
  /// Forward pass; hidden/output buffers supplied by the caller so decisions
  /// stay allocation-light.
  void forward(std::span<const double> input, std::vector<double>& hidden,
               std::vector<double>& output) const;
  [[nodiscard]] double reconstruction_error_dense(std::span<const double> input) const;

  AutoencoderConfig config_;
  std::size_t dimension_ = 0;
  // Row-major weights: w1_[h * dim + d], w2_[d * hidden + h].
  std::vector<double> w1_, b1_, w2_, b2_;
  double threshold_ = 0.0;
  double final_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
