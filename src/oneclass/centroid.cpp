#include "oneclass/centroid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace wtp::oneclass {

double quantile_threshold(std::span<const double> scores, double outlier_fraction) {
  if (scores.empty()) {
    throw std::invalid_argument{"quantile_threshold: empty scores"};
  }
  const double q = std::clamp(outlier_fraction, 0.0, 1.0);
  return util::quantile(scores, q);
}

CentroidModel::CentroidModel(double outlier_fraction)
    : outlier_fraction_{outlier_fraction} {
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"CentroidModel: outlier_fraction must be in [0, 1)"};
  }
}

void CentroidModel::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  if (data.empty()) throw std::invalid_argument{"CentroidModel::fit: empty data"};
  mean_.assign(dimension, 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto indices = data.row_indices(r);
    const auto values = data.row_values(r);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      if (indices[k] >= dimension) {
        throw std::out_of_range{"CentroidModel::fit: feature index out of range"};
      }
      mean_[indices[k]] += values[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(data.rows());
  mean_sqnorm_ = 0.0;
  for (auto& value : mean_) {
    value *= inv;
    mean_sqnorm_ += value * value;
  }
  fitted_ = true;

  std::vector<double> distances;
  distances.reserve(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    distances.push_back(
        distance_to_mean(data.row_indices(r), data.row_values(r), data.sq_norm(r)));
  }
  // Radius covering all but the outlier fraction: negate so that "higher is
  // better" for the shared quantile helper.
  std::vector<double> scores;
  scores.reserve(distances.size());
  for (const double d : distances) scores.push_back(-d);
  radius_ = -quantile_threshold(scores, outlier_fraction_);
}

double CentroidModel::distance_to_mean(const util::SparseVector& x) const {
  // ||x - m||^2 = ||x||^2 - 2 x.m + ||m||^2, exploiting x's sparsity.
  double cross = 0.0;
  for (const auto& entry : x.entries()) {
    if (entry.index < mean_.size()) cross += entry.value * mean_[entry.index];
  }
  const double sq = x.squared_norm() - 2.0 * cross + mean_sqnorm_;
  return std::sqrt(std::max(0.0, sq));
}

double CentroidModel::distance_to_mean(std::span<const std::uint32_t> indices,
                                       std::span<const double> values,
                                       double sq_norm) const {
  double cross = 0.0;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] < mean_.size()) cross += values[k] * mean_[indices[k]];
  }
  const double sq = sq_norm - 2.0 * cross + mean_sqnorm_;
  return std::sqrt(std::max(0.0, sq));
}

double CentroidModel::decision_value(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"CentroidModel: decision before fit"};
  return radius_ - distance_to_mean(x);
}

}  // namespace wtp::oneclass
