#include "oneclass/gaussian.h"

#include <cmath>
#include <stdexcept>

namespace wtp::oneclass {

GaussianModel::GaussianModel(double outlier_fraction, double variance_floor)
    : outlier_fraction_{outlier_fraction}, variance_floor_{variance_floor} {
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"GaussianModel: outlier_fraction must be in [0, 1)"};
  }
  if (variance_floor <= 0.0) {
    throw std::invalid_argument{"GaussianModel: variance_floor must be > 0"};
  }
}

void GaussianModel::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  if (data.empty()) throw std::invalid_argument{"GaussianModel::fit: empty data"};
  const double n = static_cast<double>(data.rows());
  mean_.assign(dimension, 0.0);
  std::vector<double> sq_sum(dimension, 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto indices = data.row_indices(r);
    const auto values = data.row_values(r);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      if (indices[k] >= dimension) {
        throw std::out_of_range{"GaussianModel::fit: feature index out of range"};
      }
      mean_[indices[k]] += values[k];
      sq_sum[indices[k]] += values[k] * values[k];
    }
  }
  inv_variance_.assign(dimension, 0.0);
  base_distance_ = 0.0;
  for (std::size_t d = 0; d < dimension; ++d) {
    mean_[d] /= n;
    const double variance =
        std::max(variance_floor_, sq_sum[d] / n - mean_[d] * mean_[d]);
    inv_variance_[d] = 1.0 / variance;
    base_distance_ += mean_[d] * mean_[d] * inv_variance_[d];
  }
  fitted_ = true;

  std::vector<double> scores;
  scores.reserve(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    scores.push_back(-mahalanobis(data.row_indices(r), data.row_values(r)));
  }
  threshold_ = -quantile_threshold(scores, outlier_fraction_);
}

double GaussianModel::mahalanobis(const util::SparseVector& x) const {
  // sum_d (x_d - m_d)^2 / v_d computed sparsely: start from the zero-vector
  // distance and correct the coordinates where x is non-zero.
  double sq = base_distance_;
  for (const auto& entry : x.entries()) {
    if (entry.index >= mean_.size()) continue;  // out-of-schema: ignore
    const double m = mean_[entry.index];
    const double iv = inv_variance_[entry.index];
    const double diff = entry.value - m;
    sq += diff * diff * iv - m * m * iv;
  }
  return std::sqrt(std::max(0.0, sq));
}

double GaussianModel::mahalanobis(std::span<const std::uint32_t> indices,
                                  std::span<const double> values) const {
  double sq = base_distance_;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= mean_.size()) continue;  // out-of-schema: ignore
    const double m = mean_[indices[k]];
    const double iv = inv_variance_[indices[k]];
    const double diff = values[k] - m;
    sq += diff * diff * iv - m * m * iv;
  }
  return std::sqrt(std::max(0.0, sq));
}

double GaussianModel::decision_value(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"GaussianModel: decision before fit"};
  return threshold_ - mahalanobis(x);
}

}  // namespace wtp::oneclass
