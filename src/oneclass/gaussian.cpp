#include "oneclass/gaussian.h"

#include <cmath>
#include <stdexcept>

namespace wtp::oneclass {

GaussianModel::GaussianModel(double outlier_fraction, double variance_floor)
    : outlier_fraction_{outlier_fraction}, variance_floor_{variance_floor} {
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"GaussianModel: outlier_fraction must be in [0, 1)"};
  }
  if (variance_floor <= 0.0) {
    throw std::invalid_argument{"GaussianModel: variance_floor must be > 0"};
  }
}

void GaussianModel::fit(std::span<const util::SparseVector> data,
                        std::size_t dimension) {
  if (data.empty()) throw std::invalid_argument{"GaussianModel::fit: empty data"};
  const double n = static_cast<double>(data.size());
  mean_.assign(dimension, 0.0);
  std::vector<double> sq_sum(dimension, 0.0);
  for (const auto& x : data) {
    for (const auto& entry : x.entries()) {
      if (entry.index >= dimension) {
        throw std::out_of_range{"GaussianModel::fit: feature index out of range"};
      }
      mean_[entry.index] += entry.value;
      sq_sum[entry.index] += entry.value * entry.value;
    }
  }
  inv_variance_.assign(dimension, 0.0);
  base_distance_ = 0.0;
  for (std::size_t d = 0; d < dimension; ++d) {
    mean_[d] /= n;
    const double variance =
        std::max(variance_floor_, sq_sum[d] / n - mean_[d] * mean_[d]);
    inv_variance_[d] = 1.0 / variance;
    base_distance_ += mean_[d] * mean_[d] * inv_variance_[d];
  }
  fitted_ = true;

  std::vector<double> scores;
  scores.reserve(data.size());
  for (const auto& x : data) scores.push_back(-mahalanobis(x));
  threshold_ = -quantile_threshold(scores, outlier_fraction_);
}

double GaussianModel::mahalanobis(const util::SparseVector& x) const {
  // sum_d (x_d - m_d)^2 / v_d computed sparsely: start from the zero-vector
  // distance and correct the coordinates where x is non-zero.
  double sq = base_distance_;
  for (const auto& entry : x.entries()) {
    if (entry.index >= mean_.size()) continue;  // out-of-schema: ignore
    const double m = mean_[entry.index];
    const double iv = inv_variance_[entry.index];
    const double diff = entry.value - m;
    sq += diff * diff * iv - m * m * iv;
  }
  return std::sqrt(std::max(0.0, sq));
}

double GaussianModel::decision_value(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"GaussianModel: decision before fit"};
  return threshold_ - mahalanobis(x);
}

}  // namespace wtp::oneclass
