// Diagonal-covariance Gaussian profile (a "probabilistic model" from the
// paper's future-work list): accept x when its Mahalanobis distance to the
// training distribution is within the (1 - outlier_fraction) training
// quantile.  A variance floor keeps constant features from blowing up the
// distance.
#pragma once

#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

class GaussianModel final : public OneClassModel {
 public:
  explicit GaussianModel(double outlier_fraction = 0.1,
                         double variance_floor = 1e-4);

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "gaussian"; }

  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  [[nodiscard]] double mahalanobis(const util::SparseVector& x) const;
  [[nodiscard]] double mahalanobis(std::span<const std::uint32_t> indices,
                                   std::span<const double> values) const;

  double outlier_fraction_;
  double variance_floor_;
  std::vector<double> mean_;
  std::vector<double> inv_variance_;
  double base_distance_ = 0.0;  ///< Mahalanobis^2 of the zero vector
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
