// Isolation Forest one-class model (Liu, Ting, Zhou 2008), from scratch.
//
// An ensemble of random isolation trees: each tree recursively splits a
// subsample on a random feature at a random threshold; anomalous points
// isolate in few splits.  The anomaly score is 2^(-E[path length]/c(n));
// the acceptance threshold is the training quantile at the configured
// outlier fraction.  Included in the alternative-models ablation (A3) as a
// modern baseline the paper predates.
#pragma once

#include <cstdint>
#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

struct IsolationForestConfig {
  std::size_t num_trees = 100;
  std::size_t subsample = 256;      ///< per-tree sample size (capped at n)
  double outlier_fraction = 0.1;
  std::uint64_t seed = 17;
};

class IsolationForestModel final : public OneClassModel {
 public:
  explicit IsolationForestModel(IsolationForestConfig config = {});

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "isolation-forest"; }

  /// Anomaly score in (0, 1): ~0.5 for average points, -> 1 for anomalies.
  [[nodiscard]] double anomaly_score(const util::SparseVector& x) const;
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  /// Flattened tree: internal nodes carry (feature, threshold, children);
  /// leaves carry the subsample size that reached them (path-length
  /// adjustment c(size) is added at scoring time).
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;    ///< index into the tree's node vector
    std::int32_t right = -1;
    std::uint32_t leaf_size = 0;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  [[nodiscard]] double path_length(const Tree& tree,
                                   const util::SparseVector& x) const;
  [[nodiscard]] double path_length(const Tree& tree,
                                   std::span<const double> x) const;
  [[nodiscard]] double anomaly_score_dense(std::span<const double> x) const;

  IsolationForestConfig config_;
  std::vector<Tree> trees_;
  double normalizer_ = 1.0;  ///< c(subsample)
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
