// k-nearest-neighbour distance model: the acceptance score of x is the
// (negated) Euclidean distance to its k-th nearest training window; the
// threshold is calibrated on leave-one-out training distances.  A strong
// classical one-class baseline for the A3 ablation.
#pragma once

#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

class KnnModel final : public OneClassModel {
 public:
  explicit KnnModel(std::size_t k = 5, double outlier_fraction = 0.1);

  void fit(std::span<const util::SparseVector> data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }

  /// Distance to the k-th nearest training point (excluding exact self
  /// matches only via the extra-neighbour trick during calibration).
  [[nodiscard]] double kth_distance(const util::SparseVector& x) const;
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  [[nodiscard]] double kth_distance_internal(const util::SparseVector& x,
                                             std::size_t skip_index) const;

  std::size_t k_;
  double outlier_fraction_;
  std::vector<util::SparseVector> points_;
  std::vector<double> sq_norms_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
