// k-nearest-neighbour distance model: the acceptance score of x is the
// (negated) Euclidean distance to its k-th nearest training window; the
// threshold is calibrated on leave-one-out training distances.  A strong
// classical one-class baseline for the A3 ablation.
#pragma once

#include <vector>

#include "oneclass/model.h"

namespace wtp::oneclass {

class KnnModel final : public OneClassModel {
 public:
  explicit KnnModel(std::size_t k = 5, double outlier_fraction = 0.1);

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }

  /// Distance to the k-th nearest training point (excluding exact self
  /// matches only via the extra-neighbour trick during calibration).
  [[nodiscard]] double kth_distance(const util::SparseVector& x) const;
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  /// Selects the k-th smallest of `sq_dists` (skipping `skip_index`) and
  /// returns its square root.
  [[nodiscard]] double kth_from_sq_dists(std::span<const double> sq_dists,
                                         std::size_t skip_index) const;
  /// Fills `out[i] = ||points_[i] - x||^2` from batched dot products.
  void sq_dists_to_all(const util::SparseVector& x, std::span<double> out) const;

  std::size_t k_;
  double outlier_fraction_;
  util::FeatureMatrix points_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wtp::oneclass
