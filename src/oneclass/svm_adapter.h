// Adapters exposing the SVM substrate's OC-SVM and SVDD through the common
// OneClassModel interface, plus a factory used by the alternative-models
// ablation benchmark.
#pragma once

#include <optional>

#include "oneclass/autoencoder.h"
#include "oneclass/model.h"
#include "svm/one_class_svm.h"
#include "svm/svdd.h"

namespace wtp::oneclass {

class OcSvmAdapter final : public OneClassModel {
 public:
  explicit OcSvmAdapter(svm::OneClassSvmConfig config = {}) : config_{config} {}

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "oc-svm"; }

  [[nodiscard]] const svm::OneClassSvmModel& model() const;
  /// SMO instrumentation of the last fit (iterations, shrink events, cache
  /// traffic); throws std::logic_error before fit.
  [[nodiscard]] const svm::SolverStats& solver_stats() const {
    return model().solver_stats();
  }

 private:
  svm::OneClassSvmConfig config_;
  std::optional<svm::OneClassSvmModel> model_;
};

class SvddAdapter final : public OneClassModel {
 public:
  explicit SvddAdapter(svm::SvddConfig config = {}) : config_{config} {}

  /// Couples C to an OC-SVM-style outlier fraction via the paper's relation
  /// C = 1/(nu*l), resolved at fit time when l is known.
  [[nodiscard]] static SvddAdapter with_nu(double nu, svm::KernelParams kernel = {});

  using OneClassModel::fit;
  void fit(const util::FeatureMatrix& data, std::size_t dimension) override;
  [[nodiscard]] double decision_value(const util::SparseVector& x) const override;
  [[nodiscard]] std::string name() const override { return "svdd"; }

  [[nodiscard]] const svm::SvddModel& model() const;
  /// SMO instrumentation of the last fit; throws std::logic_error before fit.
  [[nodiscard]] const svm::SolverStats& solver_stats() const {
    return model().solver_stats();
  }

 private:
  svm::SvddConfig config_;
  std::optional<double> nu_coupling_;
  std::optional<svm::SvddModel> model_;
};

/// Known model families for the factory.
enum class ModelKind : std::uint8_t {
  kOcSvm,
  kSvdd,
  kCentroid,
  kGaussian,
  kKde,
  kAutoencoder,
  kIsolationForest,
  kKnn,
};

[[nodiscard]] std::string_view to_string(ModelKind kind) noexcept;

/// Creates a default-configured model with target training outlier fraction
/// nu, mapped to each family's equivalent knob (OC-SVM: nu itself; SVDD:
/// C = 1/(nu*l), resolved at fit time; threshold models: quantile nu).
[[nodiscard]] OneClassModelPtr make_model(ModelKind kind, double nu);

}  // namespace wtp::oneclass
