#include "oneclass/isolation_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace wtp::oneclass {

namespace {

/// Average unsuccessful-search path length in a BST of n nodes (the
/// isolation-forest normalization constant c(n)).
double average_path_length(double n) {
  if (n <= 1.0) return 0.0;
  constexpr double kEulerMascheroni = 0.5772156649015329;
  const double harmonic = std::log(n - 1.0) + kEulerMascheroni;
  return 2.0 * harmonic - 2.0 * (n - 1.0) / n;
}

}  // namespace

IsolationForestModel::IsolationForestModel(IsolationForestConfig config)
    : config_{config} {
  if (config.num_trees == 0 || config.subsample < 2) {
    throw std::invalid_argument{
        "IsolationForestModel: need >= 1 tree and subsample >= 2"};
  }
  if (config.outlier_fraction < 0.0 || config.outlier_fraction >= 1.0) {
    throw std::invalid_argument{
        "IsolationForestModel: outlier_fraction must be in [0, 1)"};
  }
}

void IsolationForestModel::fit(const util::FeatureMatrix& data,
                               std::size_t dimension) {
  if (data.empty()) {
    throw std::invalid_argument{"IsolationForestModel::fit: empty data"};
  }
  util::Rng rng{config_.seed};
  const std::size_t sample_size = std::min(config_.subsample, data.rows());
  normalizer_ = std::max(1e-9, average_path_length(static_cast<double>(sample_size)));
  const auto height_limit = static_cast<std::size_t>(
      std::ceil(std::log2(std::max<std::size_t>(2, sample_size))));

  // Dense copies of the subsamples keep split evaluation branch-light; one
  // flat buffer per tree via copy_row_dense avoids per-row allocations.
  trees_.clear();
  trees_.resize(config_.num_trees);
  std::vector<double> dense(sample_size * dimension);
  const auto dense_at = [&](std::size_t row, std::size_t feature) {
    return dense[row * dimension + feature];
  };
  std::vector<std::size_t> indices;
  for (auto& tree : trees_) {
    // Draw the per-tree subsample (without replacement when possible).
    indices.resize(data.rows());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    rng.shuffle(indices);
    indices.resize(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) {
      data.copy_row_dense(indices[i],
                          std::span<double>{dense.data() + i * dimension, dimension});
    }

    // Iterative tree construction over index ranges of `working`.
    struct Pending {
      std::size_t begin, end, depth;
      std::int32_t* slot;  ///< parent child pointer to fill in
    };
    std::vector<std::size_t> working(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) working[i] = i;
    // Pending slots point into tree.nodes: reserve the worst case
    // (sample_size leaves + sample_size-1 internal nodes) so emplace_back
    // never reallocates under them.
    tree.nodes.reserve(2 * sample_size);
    std::int32_t root = -1;
    std::vector<Pending> stack{{0, sample_size, 0, &root}};
    while (!stack.empty()) {
      const Pending task = stack.back();
      stack.pop_back();
      const std::size_t count = task.end - task.begin;
      *task.slot = static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      const std::size_t node_index = tree.nodes.size() - 1;

      // Find a splittable feature: one whose min < max in this range.
      std::size_t split_feature = dimension;
      double lo = 0.0;
      double hi = 0.0;
      if (count > 1 && task.depth < height_limit) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          const std::size_t feature = rng.uniform_index(dimension);
          double min_v = dense_at(working[task.begin], feature);
          double max_v = min_v;
          for (std::size_t i = task.begin + 1; i < task.end; ++i) {
            const double v = dense_at(working[i], feature);
            min_v = std::min(min_v, v);
            max_v = std::max(max_v, v);
          }
          if (max_v > min_v) {
            split_feature = feature;
            lo = min_v;
            hi = max_v;
            break;
          }
        }
      }
      if (split_feature == dimension) {
        tree.nodes[node_index].leaf_size = static_cast<std::uint32_t>(count);
        continue;
      }
      const double threshold = rng.uniform(lo, hi);
      // Partition the range.
      std::size_t mid = task.begin;
      for (std::size_t i = task.begin; i < task.end; ++i) {
        if (dense_at(working[i], split_feature) < threshold) {
          std::swap(working[i], working[mid]);
          ++mid;
        }
      }
      if (mid == task.begin || mid == task.end) {
        // Degenerate split (threshold at the boundary): make a leaf.
        tree.nodes[node_index].leaf_size = static_cast<std::uint32_t>(count);
        continue;
      }
      tree.nodes[node_index].feature = split_feature;
      tree.nodes[node_index].threshold = threshold;
      // Children fill their slots when popped; push right first so left is
      // processed next (cache-friendlier, order irrelevant to semantics).
      stack.push_back({mid, task.end, task.depth + 1,
                       &tree.nodes[node_index].right});
      stack.push_back({task.begin, mid, task.depth + 1,
                       &tree.nodes[node_index].left});
    }
  }
  fitted_ = true;

  std::vector<double> scores;
  scores.reserve(data.rows());
  std::vector<double> query(dimension);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    data.copy_row_dense(r, query);
    scores.push_back(-anomaly_score_dense(query));
  }
  threshold_ = -quantile_threshold(scores, config_.outlier_fraction);
}

double IsolationForestModel::path_length(const Tree& tree,
                                         const util::SparseVector& x) const {
  double depth = 0.0;
  std::int32_t node_index = 0;
  while (true) {
    const Node& node = tree.nodes[static_cast<std::size_t>(node_index)];
    if (node.left < 0) {
      return depth + average_path_length(static_cast<double>(node.leaf_size));
    }
    node_index = x.at(node.feature) < node.threshold ? node.left : node.right;
    ++depth;
  }
}

double IsolationForestModel::path_length(const Tree& tree,
                                         std::span<const double> x) const {
  double depth = 0.0;
  std::int32_t node_index = 0;
  while (true) {
    const Node& node = tree.nodes[static_cast<std::size_t>(node_index)];
    if (node.left < 0) {
      return depth + average_path_length(static_cast<double>(node.leaf_size));
    }
    node_index = x[node.feature] < node.threshold ? node.left : node.right;
    ++depth;
  }
}

double IsolationForestModel::anomaly_score(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"IsolationForestModel: score before fit"};
  double total = 0.0;
  for (const auto& tree : trees_) total += path_length(tree, x);
  const double mean_path = total / static_cast<double>(trees_.size());
  return std::pow(2.0, -mean_path / normalizer_);
}

double IsolationForestModel::anomaly_score_dense(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error{"IsolationForestModel: score before fit"};
  double total = 0.0;
  for (const auto& tree : trees_) total += path_length(tree, x);
  const double mean_path = total / static_cast<double>(trees_.size());
  return std::pow(2.0, -mean_path / normalizer_);
}

double IsolationForestModel::decision_value(const util::SparseVector& x) const {
  return threshold_ - anomaly_score(x);
}

}  // namespace wtp::oneclass
