#include "oneclass/svm_adapter.h"

#include <algorithm>
#include <stdexcept>

#include "oneclass/centroid.h"
#include "oneclass/gaussian.h"
#include "oneclass/isolation_forest.h"
#include "oneclass/kde.h"
#include "oneclass/knn.h"

namespace wtp::oneclass {

void OcSvmAdapter::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  model_ = svm::OneClassSvmModel::train(data, config_, dimension);
}

double OcSvmAdapter::decision_value(const util::SparseVector& x) const {
  return model().decision_value(x);
}

const svm::OneClassSvmModel& OcSvmAdapter::model() const {
  if (!model_) throw std::logic_error{"OcSvmAdapter: decision before fit"};
  return *model_;
}

SvddAdapter SvddAdapter::with_nu(double nu, svm::KernelParams kernel) {
  if (nu <= 0.0 || nu > 1.0) {
    throw std::invalid_argument{"SvddAdapter::with_nu: nu must be in (0, 1]"};
  }
  svm::SvddConfig config;
  config.kernel = kernel;
  SvddAdapter adapter{config};
  adapter.nu_coupling_ = nu;
  return adapter;
}

void SvddAdapter::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  if (nu_coupling_) {
    const double l = static_cast<double>(std::max<std::size_t>(1, data.rows()));
    config_.c = std::clamp(1.0 / (*nu_coupling_ * l), 1.0 / l, 1.0);
  }
  model_ = svm::SvddModel::train(data, config_, dimension);
}

double SvddAdapter::decision_value(const util::SparseVector& x) const {
  return model().decision_value(x);
}

const svm::SvddModel& SvddAdapter::model() const {
  if (!model_) throw std::logic_error{"SvddAdapter: decision before fit"};
  return *model_;
}

std::string_view to_string(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kOcSvm: return "oc-svm";
    case ModelKind::kSvdd: return "svdd";
    case ModelKind::kCentroid: return "centroid";
    case ModelKind::kGaussian: return "gaussian";
    case ModelKind::kKde: return "kde";
    case ModelKind::kAutoencoder: return "autoencoder";
    case ModelKind::kIsolationForest: return "isolation-forest";
    case ModelKind::kKnn: return "knn";
  }
  return "?";
}

OneClassModelPtr make_model(ModelKind kind, double nu) {
  switch (kind) {
    case ModelKind::kOcSvm: {
      svm::OneClassSvmConfig config;
      config.nu = nu;
      return std::make_unique<OcSvmAdapter>(config);
    }
    case ModelKind::kSvdd:
      return std::make_unique<SvddAdapter>(SvddAdapter::with_nu(nu));
    case ModelKind::kCentroid:
      return std::make_unique<CentroidModel>(nu);
    case ModelKind::kGaussian:
      return std::make_unique<GaussianModel>(nu);
    case ModelKind::kKde:
      return std::make_unique<KdeModel>(nu);
    case ModelKind::kAutoencoder: {
      AutoencoderConfig config;
      config.outlier_fraction = nu;
      return std::make_unique<AutoencoderModel>(config);
    }
    case ModelKind::kIsolationForest: {
      IsolationForestConfig config;
      config.outlier_fraction = nu;
      return std::make_unique<IsolationForestModel>(config);
    }
    case ModelKind::kKnn:
      return std::make_unique<KnnModel>(5, nu);
  }
  throw std::invalid_argument{"make_model: unknown model kind"};
}

}  // namespace wtp::oneclass
