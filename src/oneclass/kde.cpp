#include "oneclass/kde.h"

#include "svm/kernel.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace wtp::oneclass {

KdeModel::KdeModel(double outlier_fraction, double bandwidth_gamma)
    : outlier_fraction_{outlier_fraction}, gamma_{bandwidth_gamma} {
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"KdeModel: outlier_fraction must be in [0, 1)"};
  }
}

void KdeModel::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  if (data.empty()) throw std::invalid_argument{"KdeModel::fit: empty data"};
  if (gamma_ <= 0.0) {
    gamma_ = 1.0 / static_cast<double>(std::max<std::size_t>(1, dimension));
  }
  points_ = data;
  fitted_ = true;

  // Leave-one-out densities would be ideal; plain densities shift every
  // training score up by 1/n uniformly, which the quantile absorbs.
  std::vector<double> scores;
  scores.reserve(points_.rows());
  std::vector<double> dots(points_.rows());
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    svm::dot_rows(points_, i, dots);
    scores.push_back(density_from_dots(dots, points_.sq_norm(i)));
  }
  threshold_ = quantile_threshold(scores, outlier_fraction_);
}

double KdeModel::density_from_dots(std::span<const double> dots,
                                   double x_sqnorm) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    const double sq_dist =
        std::max(0.0, points_.sq_norm(i) + x_sqnorm - 2.0 * dots[i]);
    sum += std::exp(-gamma_ * sq_dist);
  }
  return sum / static_cast<double>(points_.rows());
}

double KdeModel::density(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"KdeModel: density before fit"};
  thread_local std::vector<double> dots;
  dots.resize(points_.rows());
  svm::dot_rows(points_, x, dots);
  return density_from_dots(dots, x.squared_norm());
}

double KdeModel::decision_value(const util::SparseVector& x) const {
  return density(x) - threshold_;
}

}  // namespace wtp::oneclass
