#include "oneclass/kde.h"

#include <cmath>
#include <stdexcept>

namespace wtp::oneclass {

KdeModel::KdeModel(double outlier_fraction, double bandwidth_gamma)
    : outlier_fraction_{outlier_fraction}, gamma_{bandwidth_gamma} {
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    throw std::invalid_argument{"KdeModel: outlier_fraction must be in [0, 1)"};
  }
}

void KdeModel::fit(std::span<const util::SparseVector> data, std::size_t dimension) {
  if (data.empty()) throw std::invalid_argument{"KdeModel::fit: empty data"};
  if (gamma_ <= 0.0) {
    gamma_ = 1.0 / static_cast<double>(std::max<std::size_t>(1, dimension));
  }
  points_.assign(data.begin(), data.end());
  sq_norms_.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    sq_norms_[i] = points_[i].squared_norm();
  }
  fitted_ = true;

  // Leave-one-out densities would be ideal; plain densities shift every
  // training score up by 1/n uniformly, which the quantile absorbs.
  std::vector<double> scores;
  scores.reserve(points_.size());
  for (const auto& x : points_) scores.push_back(density(x));
  threshold_ = quantile_threshold(scores, outlier_fraction_);
}

double KdeModel::density(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"KdeModel: density before fit"};
  const double x_sqnorm = x.squared_norm();
  double sum = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double sq_dist =
        std::max(0.0, sq_norms_[i] + x_sqnorm - 2.0 * points_[i].dot(x));
    sum += std::exp(-gamma_ * sq_dist);
  }
  return sum / static_cast<double>(points_.size());
}

double KdeModel::decision_value(const util::SparseVector& x) const {
  return density(x) - threshold_;
}

}  // namespace wtp::oneclass
