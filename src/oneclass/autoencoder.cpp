#include "oneclass/autoencoder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace wtp::oneclass {

namespace {

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

/// Adam state for one parameter tensor.
struct AdamState {
  std::vector<double> m, v;
  explicit AdamState(std::size_t size) : m(size, 0.0), v(size, 0.0) {}

  void step(std::vector<double>& params, const std::vector<double>& grad,
            double lr, std::size_t t) {
    constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    const double bias1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    const double bias2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
      params[i] -= lr * (m[i] / bias1) / (std::sqrt(v[i] / bias2) + eps);
    }
  }
};

}  // namespace

AutoencoderModel::AutoencoderModel(AutoencoderConfig config)
    : config_{config} {
  if (config.hidden_units == 0) {
    throw std::invalid_argument{"AutoencoderModel: hidden_units must be > 0"};
  }
  if (config.outlier_fraction < 0.0 || config.outlier_fraction >= 1.0) {
    throw std::invalid_argument{"AutoencoderModel: outlier_fraction must be in [0, 1)"};
  }
}

void AutoencoderModel::forward(std::span<const double> input,
                               std::vector<double>& hidden,
                               std::vector<double>& output) const {
  const std::size_t h_units = config_.hidden_units;
  hidden.assign(h_units, 0.0);
  for (std::size_t h = 0; h < h_units; ++h) {
    double sum = b1_[h];
    const double* row = &w1_[h * dimension_];
    for (std::size_t d = 0; d < dimension_; ++d) sum += row[d] * input[d];
    hidden[h] = sigmoid(sum);
  }
  output.assign(dimension_, 0.0);
  for (std::size_t d = 0; d < dimension_; ++d) {
    double sum = b2_[d];
    const double* row = &w2_[d * h_units];
    for (std::size_t h = 0; h < h_units; ++h) sum += row[h] * hidden[h];
    output[d] = sigmoid(sum);
  }
}

void AutoencoderModel::fit(const util::FeatureMatrix& data, std::size_t dimension) {
  if (data.empty()) throw std::invalid_argument{"AutoencoderModel::fit: empty data"};
  if (dimension == 0) throw std::invalid_argument{"AutoencoderModel::fit: dimension 0"};
  dimension_ = dimension;
  const std::size_t h_units = config_.hidden_units;

  util::Rng rng{config_.seed};
  const double scale1 = std::sqrt(2.0 / static_cast<double>(dimension + h_units));
  w1_.resize(h_units * dimension);
  for (auto& w : w1_) w = rng.normal(0.0, scale1);
  b1_.assign(h_units, 0.0);
  w2_.resize(dimension * h_units);
  for (auto& w : w2_) w = rng.normal(0.0, scale1);
  b2_.assign(dimension, 0.0);

  // One flat dense buffer for all training windows (short-lived, dimension
  // <= ~1000); copy_row_dense avoids a per-row vector allocation.
  const std::size_t n = data.rows();
  std::vector<double> dense(n * dimension);
  for (std::size_t r = 0; r < n; ++r) {
    data.copy_row_dense(r, std::span<double>{dense.data() + r * dimension, dimension});
  }
  const auto dense_row = [&](std::size_t r) {
    return std::span<const double>{dense.data() + r * dimension, dimension};
  };

  AdamState adam_w1{w1_.size()}, adam_b1{b1_.size()};
  AdamState adam_w2{w2_.size()}, adam_b2{b2_.size()};
  std::vector<double> gw1(w1_.size()), gb1(b1_.size());
  std::vector<double> gw2(w2_.size()), gb2(b2_.size());
  std::vector<double> hidden, output, delta_out(dimension), delta_hidden(h_units);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::size_t adam_t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      const std::size_t end = std::min(order.size(), begin + config_.batch_size);
      std::fill(gw1.begin(), gw1.end(), 0.0);
      std::fill(gb1.begin(), gb1.end(), 0.0);
      std::fill(gw2.begin(), gw2.end(), 0.0);
      std::fill(gb2.begin(), gb2.end(), 0.0);
      const double inv_batch = 1.0 / static_cast<double>(end - begin);

      for (std::size_t s = begin; s < end; ++s) {
        const auto x = dense_row(order[s]);
        forward(x, hidden, output);
        // MSE loss; d/dz of sigmoid folded into the deltas.
        for (std::size_t d = 0; d < dimension; ++d) {
          const double err = output[d] - x[d];
          epoch_loss += err * err;
          delta_out[d] = 2.0 * err * output[d] * (1.0 - output[d]) * inv_batch;
        }
        for (std::size_t h = 0; h < h_units; ++h) {
          double sum = 0.0;
          for (std::size_t d = 0; d < dimension; ++d) {
            sum += delta_out[d] * w2_[d * h_units + h];
          }
          delta_hidden[h] = sum * hidden[h] * (1.0 - hidden[h]);
        }
        for (std::size_t d = 0; d < dimension; ++d) {
          const double delta = delta_out[d];
          if (delta == 0.0) continue;
          double* grow = &gw2[d * h_units];
          for (std::size_t h = 0; h < h_units; ++h) grow[h] += delta * hidden[h];
          gb2[d] += delta;
        }
        for (std::size_t h = 0; h < h_units; ++h) {
          const double delta = delta_hidden[h];
          if (delta == 0.0) continue;
          double* grow = &gw1[h * dimension];
          for (std::size_t d = 0; d < dimension; ++d) grow[d] += delta * x[d];
          gb1[h] += delta;
        }
      }
      ++adam_t;
      adam_w1.step(w1_, gw1, config_.learning_rate, adam_t);
      adam_b1.step(b1_, gb1, config_.learning_rate, adam_t);
      adam_w2.step(w2_, gw2, config_.learning_rate, adam_t);
      adam_b2.step(b2_, gb2, config_.learning_rate, adam_t);
    }
    final_loss_ = epoch_loss / (static_cast<double>(n) *
                                static_cast<double>(dimension));
  }
  fitted_ = true;

  std::vector<double> scores;
  scores.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    scores.push_back(-reconstruction_error_dense(dense_row(r)));
  }
  threshold_ = -quantile_threshold(scores, config_.outlier_fraction);
}

double AutoencoderModel::reconstruction_error_dense(
    std::span<const double> input) const {
  thread_local std::vector<double> hidden, output;
  forward(input, hidden, output);
  double sum = 0.0;
  for (std::size_t d = 0; d < dimension_; ++d) {
    const double err = output[d] - input[d];
    sum += err * err;
  }
  return sum / static_cast<double>(dimension_);
}

double AutoencoderModel::reconstruction_error(const util::SparseVector& x) const {
  if (!fitted_) throw std::logic_error{"AutoencoderModel: error before fit"};
  thread_local std::vector<double> input;
  input.assign(dimension_, 0.0);
  for (const auto& entry : x.entries()) {
    if (entry.index >= dimension_) {
      throw std::out_of_range{"AutoencoderModel: feature index out of range"};
    }
    input[entry.index] = entry.value;
  }
  return reconstruction_error_dense(input);
}

double AutoencoderModel::decision_value(const util::SparseVector& x) const {
  return threshold_ - reconstruction_error(x);
}

}  // namespace wtp::oneclass
