// Common interface for one-class (novelty-detection) models.
//
// The paper uses OC-SVM and SVDD; its future-work section proposes trying
// auto-encoders and probabilistic models.  This interface lets the profiling
// core and the ablation benchmarks treat all of them uniformly: fit on one
// user's transaction windows, then accept/reject new windows.
//
// Convention: decision_value(x) >= 0 means "accepted" (looks like the
// profiled user), and larger means more confidently inside the profile.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "util/feature_matrix.h"
#include "util/sparse_vector.h"

namespace wtp::oneclass {

class OneClassModel {
 public:
  virtual ~OneClassModel() = default;

  /// Trains on the profiled user's window matrix (the canonical CSR data
  /// plane); `dimension` is the feature-space dimension.  Implementations
  /// throw std::invalid_argument on empty data.
  virtual void fit(const util::FeatureMatrix& data, std::size_t dimension) = 0;

  /// Convenience: builds the matrix from a span of SparseVectors first.
  /// (Derived classes re-export this overload with `using OneClassModel::fit`.)
  void fit(std::span<const util::SparseVector> data, std::size_t dimension) {
    fit(util::FeatureMatrix::from_rows(data), dimension);
  }

  /// Signed acceptance score; >= 0 accepts.  Only valid after fit().
  [[nodiscard]] virtual double decision_value(const util::SparseVector& x) const = 0;

  [[nodiscard]] bool accepts(const util::SparseVector& x) const {
    return decision_value(x) >= 0.0;
  }

  /// Short model name for reports ("oc-svm", "svdd", "autoencoder", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

using OneClassModelPtr = std::unique_ptr<OneClassModel>;

/// Picks the threshold that rejects the `outlier_fraction` worst training
/// scores: returns the outlier_fraction-quantile of `scores` (where higher
/// scores are better).  Shared by the threshold-based models below.
[[nodiscard]] double quantile_threshold(std::span<const double> scores,
                                        double outlier_fraction);

}  // namespace wtp::oneclass
