// End-to-end synthetic trace generation: site pool + user population +
// device topology -> a time-sorted stream of augmented web transactions in
// the proxy-log schema, covering a configurable number of weeks.
//
// This is the reproduction substitute for the paper's proprietary benchmark
// dataset (6 months, 9.45M transactions, 36 users, 35 devices); see
// DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <vector>

#include "log/transaction.h"
#include "synthetic/enterprise.h"
#include "synthetic/profile.h"
#include "util/rng.h"

namespace wtp::synthetic {

struct GeneratorConfig {
  std::uint64_t seed = 42;
  /// Trace span.  The paper's dataset covers ~26 weeks (6 months).
  int duration_weeks = 26;
  /// Monday 2015-01-05 00:00:00 UTC; weeks then align with calendar weeks.
  util::UnixSeconds start_time = 1420416000;
  /// Global multiplier on every user's session rate; raises/lowers total
  /// transaction volume without changing behaviour structure.
  double activity_scale = 1.0;

  SitePoolConfig site_pool;
  UserPopulationConfig population;
  EnterpriseConfig enterprise;
};

/// A fully generated enterprise trace plus the ground-truth models that
/// produced it (useful to tests and to the identification experiment, which
/// needs to know which user truly held a device at a given time).
struct EnterpriseTrace {
  GeneratorConfig config;
  std::vector<Site> sites;
  std::vector<UserBehaviorProfile> users;
  DeviceTopology topology;
  /// All transactions of all users, sorted by (timestamp, user_id).
  std::vector<log::WebTransaction> transactions;
};

/// Generates the full trace.  Deterministic: equal configs (including seed)
/// produce identical traces.
[[nodiscard]] EnterpriseTrace generate_trace(const GeneratorConfig& config);

/// Session-level generation interface, exposed for the identification
/// experiment (Fig. 3) which scripts an explicit device-usage timeline.
struct SessionSpec {
  std::size_t user_index = 0;
  std::size_t device_index = 0;
  util::UnixSeconds start = 0;
  double duration_minutes = 20.0;
};

/// Generates the transactions of one scripted session for `user` on
/// `device`.  Appends to `out`; transactions are time-ordered within the
/// session.  `current_week` gates site adoption.
void generate_session(const EnterpriseTrace& trace, const SessionSpec& spec,
                      util::Rng& rng, std::vector<log::WebTransaction>& out);

}  // namespace wtp::synthetic
