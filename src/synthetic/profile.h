// Behavioural model behind the synthetic enterprise trace.
//
// The paper's benchmark dataset was "generated programmatically" from 36
// synthetic users; this module rebuilds that machinery.  The model is
// site-centric: a global pool of web sites, each with fixed service
// characteristics (category, application type, media types, reputation,
// scheme and action tendencies).  A user is a weighted set of favourite
// sites plus temporal habits (sessions per day, diurnal activity, session
// shape).  This yields the properties the paper measures:
//   * per-user consistency: the favourite-site set is stable, so feature
//     vocabularies saturate quickly (low novelty ratio, Figs. 1-2);
//   * small footprints: ~tens of categories/app-types per user out of
//     hundreds (paper §IV-B);
//   * inter-user similarity clusters: users in the same behaviour cluster
//     share sites, producing the off-diagonal blocks of Tab. V.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "log/transaction.h"
#include "util/rng.h"

namespace wtp::synthetic {

/// A web site/service with fixed characteristics.  Transactions to a site
/// inherit its category, application type and reputation, and sample media
/// type / HTTP action / scheme from its tendencies.
struct Site {
  std::string url;
  std::string category;
  std::string application_type;
  log::Reputation reputation = log::Reputation::kMinimalRisk;
  double https_probability = 0.5;
  bool is_private = false;            ///< internal-network service
  std::vector<std::string> media_types;
  std::vector<double> media_weights;  ///< same length as media_types
  std::vector<double> action_weights; ///< GET, POST, CONNECT, HEAD
  double resources_per_page = 3.0;    ///< mean extra transactions per page view
};

/// Parameters for building the global site pool.
struct SitePoolConfig {
  std::size_t num_sites = 1200;
  std::size_t num_categories = 105;
  std::size_t num_media_types = 257;
  std::size_t num_application_types = 464;
  double category_zipf = 0.9;     ///< popularity skew of category assignment
  double application_zipf = 0.9;
  double private_site_fraction = 0.04;
  double unverified_fraction = 0.03;
  double risky_fraction = 0.03;   ///< Medium/High risk among verified
};

/// Builds a deterministic site pool (given the rng seed).
[[nodiscard]] std::vector<Site> build_site_pool(const SitePoolConfig& config,
                                                util::Rng& rng);

/// A user's persistent behaviour profile.
struct UserBehaviorProfile {
  std::string user_id;
  int cluster = 0;

  /// Favourite sites (indices into the global pool) with Zipf visit weights.
  std::vector<std::size_t> site_indices;
  std::vector<double> site_weights;

  /// For each favourite site, the week (0-based) at which the user adopts
  /// it; sites are unavailable before their adoption week.  Most sites adopt
  /// at week 0, the tail adopts over time, producing the gradual behaviour
  /// drift the paper's novelty analysis quantifies.
  std::vector<int> adoption_week;

  // Temporal habits.
  double sessions_per_day = 4.0;
  double mean_session_minutes = 25.0;
  double mean_page_gap_seconds = 18.0;
  double work_start_hour = 8.5;   ///< diurnal activity window (UTC hours)
  double work_end_hour = 17.5;
  double weekend_activity = 0.25; ///< weekend multiplier on session rate
  double off_hours_activity = 0.06;
};

/// Parameters for synthesizing user profiles.
struct UserPopulationConfig {
  std::size_t num_users = 36;
  std::size_t num_clusters = 8;
  std::size_t min_favourite_sites = 25;
  std::size_t max_favourite_sites = 55;
  /// Fraction of favourite sites drawn from the user's cluster-shared pool.
  double cluster_site_fraction = 0.35;
  /// Number of universally popular sites everyone visits occasionally.
  std::size_t num_common_sites = 4;
  /// Multiplier on the visit weight of the common sites (they sit at the
  /// tail of each user's preference ranking; a small value keeps shared
  /// traffic a minor part of every window).
  double common_site_weight = 0.15;
  double site_zipf = 1.1;          ///< skew of per-user site visit weights
  /// Sessions/day skew across users; yields the heavy-tailed per-user
  /// transaction counts of the paper's dataset (2.5k .. 4.7M).
  double activity_zipf = 1.2;
  double max_sessions_per_day = 14.0;
  double min_sessions_per_day = 0.6;
  /// Fraction of a user's favourite sites adopted after week 0.
  double late_adoption_fraction = 0.12;
  int max_adoption_week = 12;
};

/// Builds the full user population over a given site pool.  User ids are
/// "user_1" .. "user_N".  Deterministic given the rng seed.
[[nodiscard]] std::vector<UserBehaviorProfile> build_user_population(
    const UserPopulationConfig& config, const std::vector<Site>& sites,
    util::Rng& rng);

}  // namespace wtp::synthetic
