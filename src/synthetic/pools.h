// Value pools for the synthetic enterprise trace generator.
//
// The paper's (proprietary) benchmark dataset exposes three large categorical
// vocabularies (Tab. I): website category (105 values), media sub-type (257)
// and application type (464).  These pools reproduce vocabularies of the same
// sizes: a core of realistic literal values extended deterministically with
// synthesized names.  Pool sizes are parameters so tests can use small pools
// and benchmarks can reproduce the paper-scale 843-column feature vector.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wtp::synthetic {

/// `count` website category names ("Games", "Restaurants", "Phishing", ...).
/// The first min(count, 105) entries are curated; beyond that, names are
/// synthesized ("Category_106", ...).  Deterministic.
[[nodiscard]] std::vector<std::string> category_pool(std::size_t count);

/// The 8 MIME super-types used by the paper's super-type feature group.
[[nodiscard]] std::vector<std::string> media_super_type_pool();

/// `count` full media types ("video/mp4", "text/html", ...), spread across
/// the 8 super-types.  Curated values first, then synthesized
/// ("application/x-ext-17").  Deterministic.
[[nodiscard]] std::vector<std::string> media_type_pool(std::size_t count);

/// `count` application/service names ("Rhapsody", "CloudFlare", ...).
/// Curated values first, then syllable-synthesized pronounceable names.
/// Deterministic; all names unique.
[[nodiscard]] std::vector<std::string> application_type_pool(std::size_t count);

/// Paper-scale pool sizes (Tab. I).
inline constexpr std::size_t kPaperCategoryCount = 105;
inline constexpr std::size_t kPaperSubTypeCount = 257;
inline constexpr std::size_t kPaperApplicationTypeCount = 464;

}  // namespace wtp::synthetic
