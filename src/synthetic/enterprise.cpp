#include "synthetic/enterprise.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace wtp::synthetic {

std::size_t DeviceTopology::sample_device(std::size_t user_index,
                                          util::Rng& rng) const {
  const auto& devices = user_devices.at(user_index);
  if (devices.empty()) {
    throw std::logic_error{"DeviceTopology: user has no devices"};
  }
  if (devices.size() == 1 || rng.bernoulli(primary_device_affinity)) {
    return devices.front();
  }
  return devices[1 + rng.uniform_index(devices.size() - 1)];
}

std::vector<std::size_t> DeviceTopology::device_users(std::size_t device_index) const {
  std::vector<std::size_t> users;
  for (std::size_t u = 0; u < user_devices.size(); ++u) {
    const auto& devices = user_devices[u];
    if (std::find(devices.begin(), devices.end(), device_index) != devices.end()) {
      users.push_back(u);
    }
  }
  return users;
}

double DeviceTopology::mean_users_per_device() const {
  std::size_t memberships = 0;
  std::set<std::size_t> used;
  for (const auto& devices : user_devices) {
    memberships += devices.size();
    used.insert(devices.begin(), devices.end());
  }
  if (used.empty()) return 0.0;
  return static_cast<double>(memberships) / static_cast<double>(used.size());
}

DeviceTopology build_device_topology(const EnterpriseConfig& config,
                                     util::Rng& rng) {
  if (config.num_users == 0 || config.num_devices == 0) {
    throw std::invalid_argument{"build_device_topology: users and devices must be > 0"};
  }
  DeviceTopology topology;
  topology.primary_device_affinity = config.primary_device_affinity;
  topology.device_ids.reserve(config.num_devices);
  for (std::size_t d = 0; d < config.num_devices; ++d) {
    topology.device_ids.push_back("device_" + std::to_string(d + 1));
  }
  topology.user_devices.resize(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    // Primary device round-robin: covers all devices, and with more users
    // than devices some primaries are shared.
    const std::size_t primary = u % config.num_devices;
    std::vector<std::size_t> devices{primary};
    std::set<std::size_t> seen{primary};
    // Geometric number of extra shared devices.
    std::size_t extras = 0;
    const double continue_p =
        config.mean_extra_devices / (1.0 + config.mean_extra_devices);
    while (extras < config.max_extra_devices && rng.bernoulli(continue_p)) ++extras;
    extras = std::min(extras, config.num_devices - 1);
    while (seen.size() < 1 + extras) {
      const std::size_t device = rng.uniform_index(config.num_devices);
      if (seen.insert(device).second) devices.push_back(device);
    }
    topology.user_devices[u] = std::move(devices);
  }
  return topology;
}

}  // namespace wtp::synthetic
