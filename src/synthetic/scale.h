// ScalePopulation: synthetic user populations for the million-user
// identification bench (bench/identification_scale).
//
// The enterprise trace generator (generator.h) produces full transaction
// logs — far too slow to train 10^6 profiles.  This plane skips transactions
// entirely and synthesizes at the *feature-vector* level, exploiting the
// paper's sparsity observation directly: each user gets a deterministic
// identity footprint (≈18/105 categories, ≈17/257 subtypes, Zipf-popular
// columns), windows are sampled by activating footprint columns plus a
// little off-footprint noise, and a trained-equivalent one-class SVM is
// assembled without SMO (support vectors = sampled windows, uniform alpha,
// rho from a self-score quantile).  Everything is a pure function of
// (seed, user, salt), so any user's model can be rebuilt in isolation —
// the store writer streams 10^6 models without ever holding two at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/schema.h"
#include "features/window.h"
#include "svm/one_class_svm.h"
#include "util/rng.h"
#include "util/sparse_vector.h"

namespace wtp::synthetic {

struct ScaleConfig {
  std::uint64_t seed = 42;
  std::size_t users = 1000;

  /// Vocabulary sizes (paper Tab. I scale by default → 843 columns).
  std::size_t categories = 105;
  std::size_t sub_types = 257;
  std::size_t application_types = 464;

  /// Mean footprint sizes per identity group (paper §IV sparsity: users
  /// touch ≈18 categories and ≈17 subtypes).
  double mean_categories = 18.0;
  double mean_super_types = 3.0;
  double mean_sub_types = 17.0;
  double mean_application_types = 12.0;

  /// Zipf exponent of column popularity inside each group (heavy-tailed
  /// site popularity: distinct users still share the head columns).
  double popularity_zipf = 0.9;

  /// Fraction of a window's identity columns drawn from outside the user's
  /// footprint (occasional one-off visits).
  double noise_rate = 0.05;
  /// Probability that a footprint column is active in any given window.
  double window_activation = 0.55;

  /// Trained-equivalent model shape.
  std::size_t svs_per_user = 16;
  svm::KernelParams kernel{svm::KernelType::kRbf, 0.05, 0.0, 3};
  /// rho = this quantile of the support vectors' own pre-rho scores
  /// (≈ fraction of training windows falling outside the profile).
  double rho_quantile = 0.15;

  features::WindowConfig window{60, 30};
};

class ScalePopulation {
 public:
  explicit ScalePopulation(ScaleConfig config = {});

  [[nodiscard]] std::size_t size() const noexcept { return config_.users; }
  [[nodiscard]] const ScaleConfig& config() const noexcept { return config_; }
  [[nodiscard]] const features::FeatureSchema& schema() const noexcept {
    return schema_;
  }
  [[nodiscard]] const features::WindowConfig& window() const noexcept {
    return config_.window;
  }

  /// "u0000042" — zero-padded so lexical order matches index order.
  [[nodiscard]] std::string user_id(std::size_t u) const;

  /// The user's identity footprint: sorted distinct bag-of-words columns.
  /// Deterministic in (seed, u); recomputed per call (nothing is cached, so
  /// 10^6 users cost no resident memory here).
  [[nodiscard]] std::vector<std::uint32_t> footprint(std::size_t u) const;

  /// One aggregated window for user u.  Distinct salts give distinct
  /// windows; the same (u, salt) is bit-identical across calls.
  [[nodiscard]] util::SparseVector sample_window(std::size_t u,
                                                 std::uint64_t salt) const;

  /// Trained-equivalent profile model for user u (see file comment).
  [[nodiscard]] svm::OneClassSvmModel make_model(std::size_t u) const;

 private:
  ScaleConfig config_;
  features::FeatureSchema schema_;
  util::ZipfDistribution category_rank_;
  util::ZipfDistribution super_type_rank_;
  util::ZipfDistribution sub_type_rank_;
  util::ZipfDistribution application_rank_;
};

}  // namespace wtp::synthetic
