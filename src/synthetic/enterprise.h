// Device topology of the synthetic enterprise: which users use which
// devices.  The paper's dataset has 36 users on 35 devices, each device used
// by ~3 users on average, and per-user device counts ranging from 1 to 17.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace wtp::synthetic {

struct EnterpriseConfig {
  std::size_t num_users = 36;
  std::size_t num_devices = 35;
  /// Probability that a session happens on the user's primary device.
  double primary_device_affinity = 0.75;
  /// Mean number of *extra* (shared) devices per user (geometric).
  double mean_extra_devices = 2.0;
  std::size_t max_extra_devices = 16;  ///< paper max: 17 devices for one user
};

/// User-device bipartite assignment.  Device ids are "device_1"..
struct DeviceTopology {
  std::vector<std::string> device_ids;
  /// Per user (index-aligned with the profile vector): the devices the user
  /// works on; element 0 is the primary device.
  std::vector<std::vector<std::size_t>> user_devices;
  double primary_device_affinity = 0.75;

  /// Picks a device for a new session of user `user_index`.
  [[nodiscard]] std::size_t sample_device(std::size_t user_index,
                                          util::Rng& rng) const;

  /// Users assigned to a device (inverse mapping).
  [[nodiscard]] std::vector<std::size_t> device_users(std::size_t device_index) const;

  /// Mean number of users per (used) device.
  [[nodiscard]] double mean_users_per_device() const;
};

/// Builds the topology: every user gets a primary device (round-robin so all
/// devices are primaries of ~1 user), plus a geometric number of shared
/// devices.  Deterministic given the rng seed.
[[nodiscard]] DeviceTopology build_device_topology(const EnterpriseConfig& config,
                                                   util::Rng& rng);

}  // namespace wtp::synthetic
