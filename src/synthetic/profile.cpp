#include "synthetic/profile.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "synthetic/pools.h"

namespace wtp::synthetic {

namespace {

/// Media types a site serves: one dominant "page" type plus a few resource
/// types, all drawn from the global media pool (first entries of which are
/// the common web types: html, css, javascript, images).
void assign_media_types(Site& site, const std::vector<std::string>& media_pool,
                        util::Rng& rng) {
  const std::size_t kind_count =
      2 + rng.uniform_index(std::min<std::size_t>(4, media_pool.size() - 1));
  std::set<std::size_t> chosen;
  // Biased toward the curated common types, but flat enough that sites
  // differ visibly in their sub-type mixes (the media-type columns carry a
  // large share of the discriminative signal; cf. Tab. I).
  const util::ZipfDistribution media_zipf{media_pool.size(), 0.9};
  while (chosen.size() < kind_count) chosen.insert(media_zipf(rng));
  double weight = 1.0;
  for (const std::size_t index : chosen) {
    site.media_types.push_back(media_pool[index]);
    site.media_weights.push_back(weight);
    weight *= 0.5;  // geometric decay: first type dominates
  }
}

/// HTTP action mix: mostly GET; POST-heavy for interactive sites; CONNECT
/// for HTTPS tunnelling; HEAD rare.
std::vector<double> sample_action_weights(double https_probability,
                                          util::Rng& rng) {
  const double post = rng.uniform(0.0, 0.25);
  const double connect = https_probability * rng.uniform(0.05, 0.35);
  const double head = rng.uniform(0.0, 0.04);
  const double get = 1.0;
  return {get, post, connect, head};
}

}  // namespace

std::vector<Site> build_site_pool(const SitePoolConfig& config, util::Rng& rng) {
  if (config.num_sites == 0) {
    throw std::invalid_argument{"build_site_pool: num_sites must be > 0"};
  }
  const auto categories = category_pool(config.num_categories);
  const auto media_types = media_type_pool(config.num_media_types);
  const auto applications = application_type_pool(config.num_application_types);

  const util::ZipfDistribution category_zipf{categories.size(), config.category_zipf};
  const util::ZipfDistribution application_zipf{applications.size(), config.application_zipf};

  std::vector<Site> sites;
  sites.reserve(config.num_sites);
  for (std::size_t i = 0; i < config.num_sites; ++i) {
    Site site;
    site.url = "www.site-" + std::to_string(i + 1) + ".example.com";
    site.category = categories[category_zipf(rng)];
    site.application_type = applications[application_zipf(rng)];
    site.https_probability = rng.uniform(0.1, 0.95);
    site.is_private = rng.bernoulli(config.private_site_fraction);
    if (site.is_private) {
      site.url = "intranet-" + std::to_string(i + 1) + ".corp.local";
      site.https_probability = 0.2;
    }
    if (rng.bernoulli(config.unverified_fraction)) {
      site.reputation = log::Reputation::kUnverified;
    } else if (rng.bernoulli(config.risky_fraction)) {
      site.reputation = rng.bernoulli(0.5) ? log::Reputation::kMediumRisk
                                           : log::Reputation::kHighRisk;
    } else {
      site.reputation = log::Reputation::kMinimalRisk;
    }
    assign_media_types(site, media_types, rng);
    site.action_weights = sample_action_weights(site.https_probability, rng);
    site.resources_per_page = rng.uniform(2.0, 8.0);
    sites.push_back(std::move(site));
  }
  return sites;
}

std::vector<UserBehaviorProfile> build_user_population(
    const UserPopulationConfig& config, const std::vector<Site>& sites,
    util::Rng& rng) {
  if (sites.empty()) {
    throw std::invalid_argument{"build_user_population: empty site pool"};
  }
  if (config.num_users == 0) {
    throw std::invalid_argument{"build_user_population: num_users must be > 0"};
  }
  const std::size_t clusters = std::max<std::size_t>(1, config.num_clusters);

  // Universally popular sites (search, email, CDNs): the first pool entries.
  const std::size_t common_count = std::min(config.num_common_sites, sites.size());

  // Cluster-shared pools: disjoint-ish random slices of the site pool.
  std::vector<std::vector<std::size_t>> cluster_sites(clusters);
  const std::size_t cluster_pool_size =
      std::max<std::size_t>(10, sites.size() / (2 * clusters));
  for (auto& pool : cluster_sites) {
    std::set<std::size_t> chosen;
    while (chosen.size() < cluster_pool_size) {
      chosen.insert(common_count + rng.uniform_index(sites.size() - common_count));
    }
    pool.assign(chosen.begin(), chosen.end());
  }

  // Activity skew across users (heavy-tailed per-user transaction counts).
  const util::ZipfDistribution site_popularity{sites.size(), 1.0};

  std::vector<UserBehaviorProfile> users;
  users.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    UserBehaviorProfile profile;
    profile.user_id = "user_" + std::to_string(u + 1);
    profile.cluster = static_cast<int>(u % clusters);

    // --- favourite sites -------------------------------------------------
    // Clamp against small pools: a user cannot favour more distinct sites
    // than exist outside the common set, nor take more cluster sites than
    // the cluster pool holds (the selection loops would never terminate).
    const std::size_t favourites = std::min(
        sites.size() - common_count,
        config.min_favourite_sites +
            rng.uniform_index(config.max_favourite_sites -
                              config.min_favourite_sites + 1));
    std::set<std::size_t> chosen;
    // A share of cluster sites...
    const auto& shared = cluster_sites[static_cast<std::size_t>(profile.cluster)];
    const auto cluster_take = std::min(
        shared.size(), static_cast<std::size_t>(config.cluster_site_fraction *
                                                static_cast<double>(favourites)));
    while (chosen.size() < cluster_take) {
      chosen.insert(shared[rng.uniform_index(shared.size())]);
    }
    // ...topped up with personal picks, biased toward popular sites (the
    // universally common sites at indices < common_count are excluded here
    // and appended at the tail below).
    while (chosen.size() < favourites) {
      const std::size_t pick = site_popularity(rng);
      if (pick >= common_count) chosen.insert(pick);
    }
    profile.site_indices.assign(chosen.begin(), chosen.end());
    rng.shuffle(profile.site_indices);

    // Zipf visit weights over a personal ordering of the favourites.
    profile.site_weights.resize(profile.site_indices.size());
    for (std::size_t i = 0; i < profile.site_weights.size(); ++i) {
      profile.site_weights[i] =
          1.0 / std::pow(static_cast<double>(i + 1), config.site_zipf);
    }
    // Everyone occasionally visits the common sites (search, mail, CDN),
    // with deliberately small weight so shared traffic stays a minor share.
    for (std::size_t c = 0; c < common_count; ++c) {
      profile.site_indices.push_back(c);
      profile.site_weights.push_back(
          config.common_site_weight /
          std::pow(static_cast<double>(favourites + c + 1), config.site_zipf));
    }

    // Adoption schedule: most sites from week 0, a tail adopted later.
    profile.adoption_week.assign(profile.site_indices.size(), 0);
    for (std::size_t i = 0; i < profile.adoption_week.size(); ++i) {
      // Keep the user's top sites available from the start so week-1 models
      // are trainable; only the rarely-visited tail adopts late.
      const bool late = i >= profile.adoption_week.size() / 2 &&
                        rng.bernoulli(config.late_adoption_fraction * 2.0);
      if (late) {
        profile.adoption_week[i] =
            1 + static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(std::max(1, config.max_adoption_week))));
      }
    }

    // --- temporal habits --------------------------------------------------
    // Zipf-skewed activity: user rank by u (shuffled by id assignment).
    const double rank_weight =
        1.0 / std::pow(static_cast<double>(u + 1), config.activity_zipf);
    const double max_weight = 1.0;
    const double activity =
        config.min_sessions_per_day +
        (config.max_sessions_per_day - config.min_sessions_per_day) *
            (rank_weight / max_weight);
    profile.sessions_per_day = activity;
    profile.mean_session_minutes = rng.uniform(10.0, 45.0);
    profile.mean_page_gap_seconds = rng.uniform(8.0, 35.0);
    profile.work_start_hour = rng.uniform(6.5, 10.0);
    profile.work_end_hour = profile.work_start_hour + rng.uniform(7.0, 10.0);
    profile.weekend_activity = rng.uniform(0.05, 0.5);
    profile.off_hours_activity = rng.uniform(0.02, 0.12);

    users.push_back(std::move(profile));
  }
  return users;
}

}  // namespace wtp::synthetic
