#include "synthetic/scale.h"

#include <algorithm>
#include <cstdio>

#include "svm/kernel.h"
#include "synthetic/pools.h"

namespace wtp::synthetic {

namespace {

using features::FeatureGroup;

/// Deterministic stream split: one seed, independent streams per (user,
/// purpose, salt).
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  return util::splitmix64(state);
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix(mix(a, b), c);
}

features::FeatureSchema build_schema(const ScaleConfig& config) {
  return features::FeatureSchema{
      category_pool(config.categories), media_super_type_pool(),
      media_type_pool(config.sub_types),
      application_type_pool(config.application_types)};
}

/// Picks ~poisson(mean) distinct Zipf-popular columns of one group.
void pick_footprint_columns(util::Rng& rng, const util::ZipfDistribution& rank,
                            std::size_t offset, std::size_t size, double mean,
                            std::vector<std::uint32_t>& out) {
  if (size == 0) return;
  const std::size_t count =
      std::clamp<std::size_t>(rng.poisson(mean), 1, size);
  std::vector<char> used(size, 0);
  std::size_t taken = 0;
  std::size_t attempts = 0;
  while (taken < count) {
    std::size_t r = rank(rng);
    if (++attempts > 8 * count) {  // dense pick in a small pool: probe up
      while (used[r]) r = (r + 1) % size;
    }
    if (used[r]) continue;
    used[r] = 1;
    out.push_back(static_cast<std::uint32_t>(offset + r));
    ++taken;
  }
}

}  // namespace

ScalePopulation::ScalePopulation(ScaleConfig config)
    : config_{config},
      schema_{build_schema(config)},
      category_rank_{std::max<std::size_t>(config.categories, 1),
                     config.popularity_zipf},
      super_type_rank_{schema_.group_size(FeatureGroup::kSuperType),
                       config.popularity_zipf},
      sub_type_rank_{std::max<std::size_t>(config.sub_types, 1),
                     config.popularity_zipf},
      application_rank_{std::max<std::size_t>(config.application_types, 1),
                        config.popularity_zipf} {}

std::string ScalePopulation::user_id(std::size_t u) const {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "u%07zu", u);
  return buffer;
}

std::vector<std::uint32_t> ScalePopulation::footprint(std::size_t u) const {
  util::Rng rng{mix(config_.seed, u)};
  std::vector<std::uint32_t> columns;
  pick_footprint_columns(rng, category_rank_,
                         schema_.group_offset(FeatureGroup::kCategory),
                         schema_.group_size(FeatureGroup::kCategory),
                         config_.mean_categories, columns);
  pick_footprint_columns(rng, super_type_rank_,
                         schema_.group_offset(FeatureGroup::kSuperType),
                         schema_.group_size(FeatureGroup::kSuperType),
                         config_.mean_super_types, columns);
  pick_footprint_columns(rng, sub_type_rank_,
                         schema_.group_offset(FeatureGroup::kSubType),
                         schema_.group_size(FeatureGroup::kSubType),
                         config_.mean_sub_types, columns);
  pick_footprint_columns(rng, application_rank_,
                         schema_.group_offset(FeatureGroup::kApplicationType),
                         schema_.group_size(FeatureGroup::kApplicationType),
                         config_.mean_application_types, columns);
  std::sort(columns.begin(), columns.end());
  return columns;
}

util::SparseVector ScalePopulation::sample_window(std::size_t u,
                                                  std::uint64_t salt) const {
  const std::vector<std::uint32_t> identity = footprint(u);
  util::Rng user_rng{mix(config_.seed, u, 0x7261697473ULL)};  // stable traits
  const double private_base = user_rng.uniform(0.05, 0.95);
  const double risk_base = user_rng.uniform(0.0, 0.5);
  const double verified_base = user_rng.uniform(0.3, 1.0);

  util::Rng rng{mix(config_.seed, u, salt + 1)};
  std::vector<util::SparseVector::Entry> entries;
  entries.reserve(identity.size() + 8);

  std::size_t active = 0;
  for (const std::uint32_t col : identity) {
    if (rng.bernoulli(config_.window_activation)) {
      entries.push_back({col, 1.0});
      ++active;
    }
  }
  if (active == 0) {  // a window always shows some identity signal
    entries.push_back({identity.front(), 1.0});
    active = 1;
  }

  // Off-footprint noise: occasional one-off visits outside the profile.
  const std::uint64_t noise =
      rng.poisson(config_.noise_rate * static_cast<double>(active));
  for (std::uint64_t i = 0; i < noise; ++i) {
    const std::size_t offset = schema_.group_offset(FeatureGroup::kCategory);
    const std::size_t size = schema_.group_size(FeatureGroup::kCategory);
    if (size == 0) break;
    entries.push_back(
        {static_cast<std::uint32_t>(offset + rng.uniform_index(size)), 1.0});
  }

  // Fixed groups: one action, one scheme, numeric averages around the
  // user's stable traits.
  const auto group_pick = [&](FeatureGroup group) {
    return schema_.group_offset(group) +
           rng.uniform_index(schema_.group_size(group));
  };
  entries.push_back({group_pick(FeatureGroup::kHttpAction), 1.0});
  entries.push_back({group_pick(FeatureGroup::kUriScheme), 1.0});
  const auto jitter = [&](double base) {
    return std::clamp(base + rng.uniform(-0.05, 0.05), 0.0, 1.0);
  };
  entries.push_back({schema_.private_flag_column(), jitter(private_base)});
  entries.push_back({schema_.reputation_risk_column(), jitter(risk_base)});
  entries.push_back(
      {schema_.reputation_verified_column(), jitter(verified_base)});

  // Deduplicate bag-of-words collisions (noise hitting a footprint column):
  // keep each column once — the constructor would *sum* duplicates.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const auto& a, const auto& b) {
                              return a.index == b.index;
                            }),
                entries.end());
  return util::SparseVector{std::move(entries)};
}

svm::OneClassSvmModel ScalePopulation::make_model(std::size_t u) const {
  const std::size_t m = std::max<std::size_t>(config_.svs_per_user, 1);
  std::vector<util::SparseVector> windows;
  windows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    windows.push_back(sample_window(u, 0x10000 + i));
  }
  util::FeatureMatrix svs =
      util::FeatureMatrix::from_rows(windows, schema_.dimension());

  // Trained-equivalent parts: uniform alpha (the paper's normalization has
  // sum(alpha) = 1), rho at a self-score quantile so ~rho_quantile of the
  // training windows fall outside their own profile.
  const double alpha = 1.0 / static_cast<double>(m);
  std::vector<double> coefficients(m, alpha);
  std::vector<double> self_scores(m, 0.0);
  const auto row = svm::kernel_row_scratch(m);
  for (std::size_t i = 0; i < m; ++i) {
    svm::kernel_row(config_.kernel, svs, i, row);
    double score = 0.0;
    for (std::size_t j = 0; j < m; ++j) score += coefficients[j] * row[j];
    self_scores[i] = score;
  }
  std::sort(self_scores.begin(), self_scores.end());
  const auto quantile = static_cast<std::size_t>(
      config_.rho_quantile * static_cast<double>(m - 1));
  const double rho = self_scores[std::min(quantile, m - 1)];
  return svm::OneClassSvmModel::from_parts(config_.kernel, std::move(svs),
                                           std::move(coefficients), rho);
}

}  // namespace wtp::synthetic
