#include "synthetic/pools.h"

#include <array>
#include <set>
#include <stdexcept>

namespace wtp::synthetic {

namespace {

// 105 curated website categories, modeled on commercial URL-filtering
// taxonomies (the paper's examples: Restaurants, Phishing, Messaging, Games).
constexpr std::array<const char*, 105> kCategories = {
    "Search Engines",      "Social Networking",  "News",
    "Messaging",           "Email",              "Games",
    "Streaming Media",     "Music",              "Video Sharing",
    "Restaurants",         "Travel",             "Shopping",
    "Auctions",            "Banking",            "Finance",
    "Insurance",           "Real Estate",        "Job Search",
    "Education",           "Reference",          "Science",
    "Technology",          "Software Downloads", "File Sharing",
    "Cloud Storage",       "Web Hosting",        "Content Delivery",
    "Advertising",         "Analytics",          "Marketing",
    "Business",            "Government",         "Military",
    "Politics",            "Law",                "Health",
    "Medicine",            "Fitness",            "Nutrition",
    "Sports",              "Outdoor Recreation", "Automotive",
    "Motorcycles",         "Boating",            "Aviation",
    "Pets",                "Gardening",          "Home Improvement",
    "Cooking",             "Fashion",            "Beauty",
    "Jewelry",             "Art",                "Photography",
    "Design",              "Architecture",       "Museums",
    "History",             "Literature",         "Comics",
    "Humor",               "Entertainment",      "Celebrities",
    "Movies",              "Television",         "Radio",
    "Podcasts",            "Blogs",              "Forums",
    "Dating",              "Kids",               "Parenting",
    "Weddings",            "Religion",           "Astrology",
    "Gambling",            "Lottery",            "Alcohol",
    "Tobacco",             "Weapons",            "Adult Content",
    "Nudity",              "Violence",           "Hate Speech",
    "Illegal Drugs",       "Hacking",            "Phishing",
    "Malware Sites",       "Spyware",            "Botnets",
    "Spam URLs",           "Proxy Avoidance",    "Anonymizers",
    "Peer-to-Peer",        "Remote Access",      "Web Conferencing",
    "VoIP",                "Translation",        "Maps",
    "Weather",             "Classifieds",        "Coupons",
    "Stock Trading",       "Cryptocurrency",     "Uncategorized",
};

// Curated media types across the 8 MIME super-types.
constexpr std::array<const char*, 60> kMediaTypes = {
    "text/html",                  "text/plain",
    "text/css",                   "text/javascript",
    "text/xml",                   "text/csv",
    "text/calendar",              "text/markdown",
    "image/jpeg",                 "image/png",
    "image/gif",                  "image/svg+xml",
    "image/webp",                 "image/bmp",
    "image/tiff",                 "image/x-icon",
    "video/mp4",                  "video/webm",
    "video/ogg",                  "video/mpeg",
    "video/quicktime",            "video/x-flv",
    "video/x-msvideo",            "video/3gpp",
    "audio/mpeg",                 "audio/wav",
    "audio/ogg",                  "audio/aac",
    "audio/flac",                 "audio/midi",
    "audio/webm",                 "audio/x-ms-wma",
    "application/json",           "application/xml",
    "application/javascript",     "application/pdf",
    "application/zip",            "application/gzip",
    "application/x-tar",          "application/msword",
    "application/vnd.ms-excel",   "application/vnd.ms-powerpoint",
    "application/octet-stream",   "application/x-shockwave-flash",
    "application/x-www-form-urlencoded", "application/wasm",
    "application/rtf",            "application/postscript",
    "font/woff",                  "font/woff2",
    "font/ttf",                   "font/otf",
    "message/rfc822",             "message/http",
    "message/partial",            "model/obj",
    "model/stl",                  "model/gltf+json",
    "model/vrml",                 "model/mesh",
};

// Curated application/service names (the paper's examples: Rhapsody,
// CloudFlare, Speedyshare).
constexpr std::array<const char*, 64> kApplications = {
    "Rhapsody",     "CloudFlare",  "Speedyshare",  "Dropbox",
    "GoogleDrive",  "OneDrive",    "Box",          "iCloud",
    "YouTube",      "Netflix",     "Spotify",      "Pandora",
    "Hulu",         "Vimeo",       "Twitch",       "SoundCloud",
    "Facebook",     "Twitter",     "LinkedIn",     "Instagram",
    "Pinterest",    "Reddit",      "Tumblr",       "Snapchat",
    "WhatsApp",     "Telegram",    "Skype",        "Slack",
    "HipChat",      "Hangouts",    "Zoom",         "WebEx",
    "Gmail",        "Outlook",     "YahooMail",    "ProtonMail",
    "Salesforce",   "SAP",         "Oracle",       "Workday",
    "Jira",         "Confluence",  "GitHub",       "GitLab",
    "Bitbucket",    "StackOverflow", "Wikipedia",  "WordPress",
    "Blogger",      "Medium",      "Akamai",       "Fastly",
    "AmazonAWS",    "Azure",       "GoogleCloud",  "Heroku",
    "DoubleClick",  "GoogleAds",   "Criteo",       "Taboola",
    "PayPal",       "Stripe",      "Steam",        "BattleNet",
};

// Syllables for deterministic pronounceable name synthesis.
constexpr std::array<const char*, 20> kOnsets = {
    "Ba", "Ce", "Di", "Fo", "Gu", "Ha", "Ji", "Ko", "Lu", "Ma",
    "Ne", "Pi", "Qua", "Ro", "Su", "Ta", "Ve", "Wi", "Xo", "Zy"};
constexpr std::array<const char*, 16> kMiddles = {
    "ran", "lex", "vim", "dor", "net", "bly", "gor", "mix",
    "pal", "tek", "zen", "cor", "fin", "lab", "nim", "sys"};
constexpr std::array<const char*, 12> kSuffixes = {
    "ify", "ly", "hub", "box", "cast", "flow", "share", "sync",
    "desk", "base", "ware", "app"};

}  // namespace

std::vector<std::string> category_pool(std::size_t count) {
  std::vector<std::string> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count && i < kCategories.size(); ++i) {
    pool.emplace_back(kCategories[i]);
  }
  for (std::size_t i = kCategories.size(); i < count; ++i) {
    pool.push_back("Category_" + std::to_string(i + 1));
  }
  return pool;
}

std::vector<std::string> media_super_type_pool() {
  return {"application", "audio", "font", "image",
          "message",     "model", "text", "video"};
}

std::vector<std::string> media_type_pool(std::size_t count) {
  std::vector<std::string> pool;
  pool.reserve(count);
  // The sub-type strings must be pairwise distinct so that `count` media
  // types yield `count` sub-type feature columns (Tab. I counts 257
  // distinct sub-types); curated entries sharing a sub-type across
  // super-types (e.g. audio/ogg vs video/ogg) are skipped after the first.
  std::set<std::string> seen_subtypes;
  for (std::size_t i = 0; i < kMediaTypes.size() && pool.size() < count; ++i) {
    const std::string media = kMediaTypes[i];
    const std::string sub_type = media.substr(media.find('/') + 1);
    if (seen_subtypes.insert(sub_type).second) pool.push_back(media);
  }
  // Synthesize additional sub-types round-robin across super-types so each
  // super-type keeps a rich sub-type population, as in the paper's data
  // (8 super-types vs 257 sub-types).
  const auto supers = media_super_type_pool();
  for (std::size_t i = kMediaTypes.size(); pool.size() < count; ++i) {
    const std::size_t super_index = i % supers.size();
    pool.push_back(supers[super_index] + "/x-ext-" + std::to_string(i));
  }
  return pool;
}

std::vector<std::string> application_type_pool(std::size_t count) {
  std::vector<std::string> pool;
  pool.reserve(count);
  std::set<std::string> seen;
  for (std::size_t i = 0; i < count && i < kApplications.size(); ++i) {
    pool.emplace_back(kApplications[i]);
    seen.insert(pool.back());
  }
  // Deterministic syllable products: 20*16*12 = 3840 unique names available.
  std::size_t serial = 0;
  while (pool.size() < count) {
    if (serial >= kOnsets.size() * kMiddles.size() * kSuffixes.size()) {
      // Exhausted the syllable space; fall back to numbered names.
      pool.push_back("Service_" + std::to_string(pool.size() + 1));
      continue;
    }
    const std::size_t onset = serial % kOnsets.size();
    const std::size_t middle = (serial / kOnsets.size()) % kMiddles.size();
    const std::size_t suffix = serial / (kOnsets.size() * kMiddles.size());
    ++serial;
    std::string name =
        std::string{kOnsets[onset]} + kMiddles[middle] + kSuffixes[suffix];
    if (seen.insert(name).second) pool.push_back(std::move(name));
  }
  return pool;
}

}  // namespace wtp::synthetic
