#include "synthetic/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wtp::synthetic {

namespace {

/// Relative session intensity for a user at a given time: high inside the
/// user's work window on weekdays, damped on weekends and off hours.
double diurnal_multiplier(const UserBehaviorProfile& user, util::UnixSeconds ts) {
  const double hour = util::fractional_hour(ts);
  const int dow = util::day_of_week(ts);  // 0 = Monday
  const bool weekend = dow >= 5;
  const bool working_hours = hour >= user.work_start_hour && hour < user.work_end_hour;
  double multiplier = working_hours ? 1.0 : user.off_hours_activity;
  if (weekend) multiplier *= user.weekend_activity;
  return multiplier;
}

/// Samples a session start second within [day_start, day_start + 1 day) by
/// rejection against the diurnal profile.
util::UnixSeconds sample_session_start(const UserBehaviorProfile& user,
                                       util::UnixSeconds day_start,
                                       util::Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto offset = static_cast<util::UnixSeconds>(
        rng.uniform() * static_cast<double>(util::kSecondsPerDay));
    const util::UnixSeconds candidate = day_start + offset;
    if (rng.uniform() < diurnal_multiplier(user, candidate)) return candidate;
  }
  // Extremely inactive profile: fall back to the middle of the work window.
  const auto work_mid = static_cast<util::UnixSeconds>(
      (user.work_start_hour + user.work_end_hour) * 0.5 * util::kSecondsPerHour);
  return day_start + work_mid;
}

/// Picks one of the user's favourite sites that has been adopted by
/// `current_week`.  Returns the site index into the global pool, or the
/// user's top site if nothing has been adopted yet (week 0 always has
/// adopted sites by construction).
std::size_t pick_site(const EnterpriseTrace& trace, std::size_t user_index,
                      int current_week, util::Rng& rng) {
  const auto& user = trace.users[user_index];
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::size_t pick = rng.weighted_index(user.site_weights);
    if (user.adoption_week[pick] <= current_week) return user.site_indices[pick];
  }
  // Fall back to the first adopted favourite.
  for (std::size_t i = 0; i < user.site_indices.size(); ++i) {
    if (user.adoption_week[i] <= current_week) return user.site_indices[i];
  }
  return user.site_indices.front();
}

log::HttpAction sample_action(const Site& site, util::Rng& rng) {
  switch (rng.weighted_index(site.action_weights)) {
    case 0: return log::HttpAction::kGet;
    case 1: return log::HttpAction::kPost;
    case 2: return log::HttpAction::kConnect;
    default: return log::HttpAction::kHead;
  }
}

/// Emits the 1 + resources transactions of a single page view.
void emit_page_view(const EnterpriseTrace& trace, std::size_t user_index,
                    std::size_t device_index, std::size_t site_index,
                    util::UnixSeconds when, util::Rng& rng,
                    std::vector<log::WebTransaction>& out) {
  const Site& site = trace.sites[site_index];
  const auto& user = trace.users[user_index];
  const bool https = rng.bernoulli(site.https_probability);

  const std::uint64_t resources = rng.poisson(site.resources_per_page);
  util::UnixSeconds ts = when;
  for (std::uint64_t r = 0; r <= resources; ++r) {
    log::WebTransaction txn;
    txn.timestamp = ts;
    txn.url = site.url;
    txn.scheme = https ? log::UriScheme::kHttps : log::UriScheme::kHttp;
    // The first transaction of a page view fetches the page itself; follow-up
    // resource fetches are GETs (or CONNECT tunnels under HTTPS).
    if (r == 0) {
      txn.action = sample_action(site, rng);
    } else {
      txn.action = https && rng.bernoulli(0.2) ? log::HttpAction::kConnect
                                               : log::HttpAction::kGet;
    }
    txn.user_id = user.user_id;
    txn.device_id = trace.topology.device_ids[device_index];
    txn.category = site.category;
    txn.media_type = site.media_types[rng.weighted_index(site.media_weights)];
    txn.application_type = site.application_type;
    txn.reputation = site.reputation;
    txn.private_destination = site.is_private;
    out.push_back(std::move(txn));
    // Resources arrive in a sub-second to few-second burst.
    ts += static_cast<util::UnixSeconds>(rng.exponential(1.5));
  }
}

}  // namespace

void generate_session(const EnterpriseTrace& trace, const SessionSpec& spec,
                      util::Rng& rng, std::vector<log::WebTransaction>& out) {
  const auto& user = trace.users.at(spec.user_index);
  const auto session_end = spec.start + static_cast<util::UnixSeconds>(
                                            spec.duration_minutes * 60.0);
  const int week = static_cast<int>((spec.start - trace.config.start_time) /
                                    util::kSecondsPerWeek);
  util::UnixSeconds now = spec.start;
  while (now < session_end) {
    const std::size_t site = pick_site(trace, spec.user_index, week, rng);
    emit_page_view(trace, spec.user_index, spec.device_index, site, now, rng, out);
    now += 1 + static_cast<util::UnixSeconds>(
                   rng.exponential(1.0 / user.mean_page_gap_seconds));
  }
}

EnterpriseTrace generate_trace(const GeneratorConfig& config) {
  if (config.duration_weeks <= 0) {
    throw std::invalid_argument{"generate_trace: duration_weeks must be > 0"};
  }
  if (config.activity_scale <= 0.0) {
    throw std::invalid_argument{"generate_trace: activity_scale must be > 0"};
  }
  EnterpriseTrace trace;
  trace.config = config;

  util::Rng master{config.seed};
  util::Rng pool_rng = master.fork();
  util::Rng population_rng = master.fork();
  util::Rng topology_rng = master.fork();

  trace.sites = build_site_pool(config.site_pool, pool_rng);
  trace.users = build_user_population(config.population, trace.sites, population_rng);
  trace.topology = build_device_topology(config.enterprise, topology_rng);
  if (trace.users.size() != trace.topology.user_devices.size()) {
    throw std::invalid_argument{
        "generate_trace: population.num_users must equal enterprise.num_users"};
  }

  const int days = config.duration_weeks * 7;
  for (std::size_t u = 0; u < trace.users.size(); ++u) {
    util::Rng user_rng = master.fork();
    const auto& user = trace.users[u];
    for (int day = 0; day < days; ++day) {
      const util::UnixSeconds day_start =
          config.start_time + static_cast<util::UnixSeconds>(day) * util::kSecondsPerDay;
      // Expected sessions today, modulated by the weekday/weekend pattern.
      const int dow = util::day_of_week(day_start);
      const double day_rate = user.sessions_per_day * config.activity_scale *
                              (dow >= 5 ? user.weekend_activity : 1.0);
      const std::uint64_t sessions = user_rng.poisson(day_rate);
      for (std::uint64_t s = 0; s < sessions; ++s) {
        SessionSpec spec;
        spec.user_index = u;
        spec.device_index = trace.topology.sample_device(u, user_rng);
        spec.start = sample_session_start(user, day_start, user_rng);
        spec.duration_minutes =
            std::max(1.0, user_rng.normal(user.mean_session_minutes,
                                          user.mean_session_minutes * 0.4));
        generate_session(trace, spec, user_rng, trace.transactions);
      }
    }
  }

  std::sort(trace.transactions.begin(), trace.transactions.end(),
            [](const log::WebTransaction& a, const log::WebTransaction& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.user_id < b.user_id;
            });
  return trace;
}

}  // namespace wtp::synthetic
