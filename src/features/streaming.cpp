#include "features/streaming.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace wtp::features {

StreamingWindowAggregator::StreamingWindowAggregator(const FeatureSchema& schema,
                                                     WindowConfig config)
    : schema_{&schema}, encoder_{schema}, config_{config} {
  if (config.shift_s <= 0 || config.duration_s <= 0 ||
      config.shift_s > config.duration_s) {
    throw std::invalid_argument{
        "StreamingWindowAggregator: require 0 < shift <= duration"};
  }
}

void StreamingWindowAggregator::reset() {
  buffer_.clear();
  started_ = false;
  origin_ = 0;
  last_timestamp_ = 0;
  next_k_ = 0;
}

Window StreamingWindowAggregator::build_window(util::UnixSeconds start,
                                               util::UnixSeconds end) const {
  Window window;
  window.start = start;
  window.end = end;
  util::SparseAccumulator acc;
  std::size_t count = 0;
  for (const auto& item : buffer_) {
    if (item.timestamp < start) continue;
    if (item.timestamp >= end) break;
    ++count;
  }
  window.transaction_count = count;
  const double inverse_count = count ? 1.0 / static_cast<double>(count) : 0.0;
  for (const auto& item : buffer_) {
    if (item.timestamp < start) continue;
    if (item.timestamp >= end) break;
    for (const auto& entry : item.encoded.entries()) {
      if (schema_->is_numeric_column(entry.index)) {
        acc.add(entry.index, entry.value * inverse_count);
      } else {
        acc.max(entry.index, entry.value);
      }
    }
  }
  window.features = acc.build();
  return window;
}

void StreamingWindowAggregator::emit_ready(util::UnixSeconds horizon,
                                           bool flushing,
                                           std::vector<Window>& out) {
  while (!buffer_.empty()) {
    const util::UnixSeconds start = origin_ + next_k_ * config_.shift_s;
    const util::UnixSeconds end = start + config_.duration_s;
    // A window is only final once no future transaction can land in it.
    if (!flushing && end > horizon) break;
    // Drop buffered transactions that precede every open window.
    while (!buffer_.empty() && buffer_.front().timestamp < start) {
      buffer_.pop_front();
    }
    if (buffer_.empty()) break;
    const util::UnixSeconds next_txn = buffer_.front().timestamp;
    if (next_txn >= end) {
      // Empty window: jump to the first index whose window contains the
      // next buffered transaction (mirrors the batch aggregator).
      const std::int64_t jump =
          (next_txn - config_.duration_s - origin_) / config_.shift_s + 1;
      next_k_ = std::max(next_k_ + 1, jump);
      continue;
    }
    out.push_back(build_window(start, end));
    ++next_k_;
  }
}

std::vector<Window> StreamingWindowAggregator::push(const log::WebTransaction& txn) {
  if (started_ && txn.timestamp < last_timestamp_) {
    throw std::invalid_argument{
        "StreamingWindowAggregator::push: transactions must be time-ordered"};
  }
  if (!started_) {
    started_ = true;
    origin_ = txn.timestamp;
  }
  last_timestamp_ = txn.timestamp;
  buffer_.push_back({txn.timestamp, encoder_.encode(txn)});

  std::vector<Window> completed;
  emit_ready(txn.timestamp, /*flushing=*/false, completed);
  return completed;
}

void StreamingWindowAggregator::save_state(std::ostream& out) const {
  out.precision(17);  // max_digits10: doubles round-trip exactly through text
  out << "aggregator " << (started_ ? 1 : 0) << ' ' << origin_ << ' '
      << last_timestamp_ << ' ' << next_k_ << ' ' << buffer_.size() << '\n';
  for (const auto& item : buffer_) {
    out << item.timestamp << ' ' << item.encoded.entries().size();
    for (const auto& entry : item.encoded.entries()) {
      out << ' ' << entry.index << ':' << entry.value;
    }
    out << '\n';
  }
}

void StreamingWindowAggregator::restore_state(std::istream& in) {
  const auto fail = [](const char* what) -> std::runtime_error {
    return std::runtime_error{std::string{"StreamingWindowAggregator::restore_state: "} + what};
  };
  std::string tag;
  int started = 0;
  util::UnixSeconds origin = 0;
  util::UnixSeconds last = 0;
  std::int64_t next_k = 0;
  std::size_t count = 0;
  if (!(in >> tag >> started >> origin >> last >> next_k >> count) ||
      tag != "aggregator") {
    throw fail("bad header");
  }
  std::deque<Buffered> buffer;
  for (std::size_t i = 0; i < count; ++i) {
    util::UnixSeconds timestamp = 0;
    std::size_t entries = 0;
    if (!(in >> timestamp >> entries)) throw fail("bad buffered entry");
    std::vector<util::SparseVector::Entry> parsed;
    parsed.reserve(entries);
    for (std::size_t j = 0; j < entries; ++j) {
      std::size_t index = 0;
      char colon = 0;
      double value = 0.0;
      if (!(in >> index >> colon >> value) || colon != ':') {
        throw fail("bad feature entry");
      }
      parsed.push_back({index, value});
    }
    buffer.push_back({timestamp, util::SparseVector{std::move(parsed)}});
  }
  started_ = started != 0;
  origin_ = origin;
  last_timestamp_ = last;
  next_k_ = next_k;
  buffer_ = std::move(buffer);
}

std::vector<Window> StreamingWindowAggregator::flush() {
  std::vector<Window> completed;
  emit_ready(0, /*flushing=*/true, completed);
  buffer_.clear();
  return completed;
}

}  // namespace wtp::features
