#include "features/schema.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace wtp::features {

namespace {

std::vector<std::string> sorted_unique(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::unordered_map<std::string, std::size_t> index_of(
    const std::vector<std::string>& values) {
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) index.emplace(values[i], i);
  return index;
}

template <typename Map>
std::optional<std::size_t> lookup(const Map& map, std::string_view value,
                                  std::size_t offset) {
  const auto it = map.find(std::string{value});
  if (it == map.end()) return std::nullopt;
  return offset + it->second;
}

}  // namespace

std::string_view to_string(FeatureGroup group) noexcept {
  switch (group) {
    case FeatureGroup::kHttpAction: return "http action";
    case FeatureGroup::kUriScheme: return "uri scheme";
    case FeatureGroup::kPrivateFlag: return "public address flag";
    case FeatureGroup::kReputationRisk: return "reputation";
    case FeatureGroup::kReputationVerified: return "reputation verified";
    case FeatureGroup::kCategory: return "category";
    case FeatureGroup::kSuperType: return "supertype";
    case FeatureGroup::kSubType: return "subtype";
    case FeatureGroup::kApplicationType: return "application type";
  }
  return "?";
}

FeatureSchema::FeatureSchema(std::vector<std::string> categories,
                             std::vector<std::string> super_types,
                             std::vector<std::string> sub_types,
                             std::vector<std::string> application_types)
    : categories_{sorted_unique(std::move(categories))},
      super_types_{sorted_unique(std::move(super_types))},
      sub_types_{sorted_unique(std::move(sub_types))},
      application_types_{sorted_unique(std::move(application_types))} {
  category_index_ = index_of(categories_);
  super_type_index_ = index_of(super_types_);
  sub_type_index_ = index_of(sub_types_);
  application_type_index_ = index_of(application_types_);
  build_layout();
}

FeatureSchema FeatureSchema::from_transactions(
    std::span<const log::WebTransaction> txns) {
  std::set<std::string> categories;
  std::set<std::string> super_types;
  std::set<std::string> sub_types;
  std::set<std::string> application_types;
  for (const auto& txn : txns) {
    categories.insert(txn.category);
    const auto media = log::split_media_type(txn.media_type);
    super_types.insert(media.super_type);
    if (!media.sub_type.empty()) sub_types.insert(media.sub_type);
    application_types.insert(txn.application_type);
  }
  return FeatureSchema{
      {categories.begin(), categories.end()},
      {super_types.begin(), super_types.end()},
      {sub_types.begin(), sub_types.end()},
      {application_types.begin(), application_types.end()}};
}

void FeatureSchema::build_layout() {
  const std::size_t group_sizes[kFeatureGroupCount] = {
      static_cast<std::size_t>(log::kHttpActionCount),
      static_cast<std::size_t>(log::kUriSchemeCount),
      1,  // private flag
      1,  // reputation risk
      1,  // reputation verified
      categories_.size(),
      super_types_.size(),
      sub_types_.size(),
      application_types_.size(),
  };
  std::size_t offset = 0;
  for (int g = 0; g < kFeatureGroupCount; ++g) {
    offsets_[g] = offset;
    sizes_[g] = group_sizes[g];
    offset += group_sizes[g];
  }
  dimension_ = offset;
}

std::size_t FeatureSchema::group_offset(FeatureGroup group) const noexcept {
  return offsets_[static_cast<int>(group)];
}

std::size_t FeatureSchema::group_size(FeatureGroup group) const noexcept {
  return sizes_[static_cast<int>(group)];
}

FeatureGroup FeatureSchema::column_group(std::size_t column) const {
  if (column >= dimension_) {
    throw std::out_of_range{"FeatureSchema::column_group: column " +
                            std::to_string(column) + " >= dimension " +
                            std::to_string(dimension_)};
  }
  for (int g = kFeatureGroupCount - 1; g >= 0; --g) {
    if (column >= offsets_[g] && sizes_[g] > 0) return static_cast<FeatureGroup>(g);
  }
  return FeatureGroup::kHttpAction;
}

std::optional<std::size_t> FeatureSchema::category_column(std::string_view value) const {
  return lookup(category_index_, value, group_offset(FeatureGroup::kCategory));
}

std::optional<std::size_t> FeatureSchema::super_type_column(std::string_view value) const {
  return lookup(super_type_index_, value, group_offset(FeatureGroup::kSuperType));
}

std::optional<std::size_t> FeatureSchema::sub_type_column(std::string_view value) const {
  return lookup(sub_type_index_, value, group_offset(FeatureGroup::kSubType));
}

std::optional<std::size_t> FeatureSchema::application_type_column(
    std::string_view value) const {
  return lookup(application_type_index_, value,
                group_offset(FeatureGroup::kApplicationType));
}

std::size_t FeatureSchema::http_action_column(log::HttpAction action) const noexcept {
  return group_offset(FeatureGroup::kHttpAction) + static_cast<std::size_t>(action);
}

std::size_t FeatureSchema::uri_scheme_column(log::UriScheme scheme) const noexcept {
  return group_offset(FeatureGroup::kUriScheme) + static_cast<std::size_t>(scheme);
}

std::size_t FeatureSchema::private_flag_column() const noexcept {
  return group_offset(FeatureGroup::kPrivateFlag);
}

std::size_t FeatureSchema::reputation_risk_column() const noexcept {
  return group_offset(FeatureGroup::kReputationRisk);
}

std::size_t FeatureSchema::reputation_verified_column() const noexcept {
  return group_offset(FeatureGroup::kReputationVerified);
}

bool FeatureSchema::is_numeric_column(std::size_t column) const noexcept {
  return column == private_flag_column() || column == reputation_risk_column() ||
         column == reputation_verified_column();
}

std::vector<std::uint32_t> FeatureSchema::numeric_columns() const {
  return {static_cast<std::uint32_t>(private_flag_column()),
          static_cast<std::uint32_t>(reputation_risk_column()),
          static_cast<std::uint32_t>(reputation_verified_column())};
}

std::string FeatureSchema::column_name(std::size_t column) const {
  const FeatureGroup group = column_group(column);
  const std::size_t local = column - group_offset(group);
  switch (group) {
    case FeatureGroup::kHttpAction:
      return "action:" + std::string{log::to_string(static_cast<log::HttpAction>(local))};
    case FeatureGroup::kUriScheme:
      return "scheme:" + std::string{log::to_string(static_cast<log::UriScheme>(local))};
    case FeatureGroup::kPrivateFlag: return "private_flag";
    case FeatureGroup::kReputationRisk: return "reputation_risk";
    case FeatureGroup::kReputationVerified: return "reputation_verified";
    case FeatureGroup::kCategory: return "category:" + categories_[local];
    case FeatureGroup::kSuperType: return "supertype:" + super_types_[local];
    case FeatureGroup::kSubType: return "subtype:" + sub_types_[local];
    case FeatureGroup::kApplicationType:
      return "application_type:" + application_types_[local];
  }
  return "?";
}

std::vector<std::pair<std::string, std::size_t>> FeatureSchema::composition() const {
  std::vector<std::pair<std::string, std::size_t>> rows;
  rows.reserve(kFeatureGroupCount);
  for (int g = 0; g < kFeatureGroupCount; ++g) {
    rows.emplace_back(std::string{to_string(static_cast<FeatureGroup>(g))}, sizes_[g]);
  }
  return rows;
}

}  // namespace wtp::features
