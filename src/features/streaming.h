// Incremental (online) window aggregation.
//
// The batch WindowAggregator needs the whole transaction sequence up front;
// a monitoring deployment sees transactions one at a time and must emit each
// window as soon as its period has elapsed (a new feature vector every S
// seconds, paper §IV-C).  StreamingWindowAggregator produces *exactly* the
// same windows as the batch aggregator over the same input (a property the
// tests assert), but with O(window span) memory.
#pragma once

#include <deque>
#include <iosfwd>
#include <vector>

#include "features/encoder.h"
#include "features/window.h"

namespace wtp::features {

class StreamingWindowAggregator {
 public:
  /// The schema must outlive the aggregator.
  StreamingWindowAggregator(const FeatureSchema& schema, WindowConfig config);

  /// Feeds the next transaction.  Transactions must arrive in
  /// non-decreasing timestamp order (throws std::invalid_argument
  /// otherwise).  Returns the windows completed by this arrival, i.e.
  /// windows that can no longer receive transactions.
  [[nodiscard]] std::vector<Window> push(const log::WebTransaction& txn);

  /// Ends the stream: emits all remaining non-empty windows.
  [[nodiscard]] std::vector<Window> flush();

  /// Resets to the initial (empty) state.
  void reset();

  /// Serializes the live state — stream cursor plus the buffered encoded
  /// transactions — so a successor aggregator constructed over the same
  /// schema and window config resumes the stream byte-identically (the
  /// serving snapshot/restore path).  Doubles are written with 17
  /// significant digits and round-trip exactly.
  void save_state(std::ostream& out) const;

  /// Inverse of save_state: replaces the current state.  Throws
  /// std::runtime_error on malformed input.
  void restore_state(std::istream& in);

  [[nodiscard]] const WindowConfig& config() const noexcept { return config_; }
  /// Transactions currently buffered (still inside open windows).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  struct Buffered {
    util::UnixSeconds timestamp;
    util::SparseVector encoded;
  };

  /// Emits all windows with end <= horizon (or all remaining when
  /// horizon-less flushing), appending to `out`.
  void emit_ready(util::UnixSeconds horizon, bool flushing,
                  std::vector<Window>& out);

  /// Builds window k from the buffer (assumes non-empty intersection).
  [[nodiscard]] Window build_window(util::UnixSeconds start,
                                    util::UnixSeconds end) const;

  const FeatureSchema* schema_;
  TransactionEncoder encoder_;
  WindowConfig config_;
  std::deque<Buffered> buffer_;
  bool started_ = false;
  util::UnixSeconds origin_ = 0;
  util::UnixSeconds last_timestamp_ = 0;
  std::int64_t next_k_ = 0;  ///< next window index to consider emitting
};

}  // namespace wtp::features
