// Per-transaction feature encoding (paper §III-B).
//
// A single transaction maps to a sparse binary/numeric vector in the schema
// layout; the window aggregator combines several of these into one training
// sample.  Out-of-vocabulary categorical values contribute no column.
#pragma once

#include "features/schema.h"
#include "log/transaction.h"
#include "util/sparse_vector.h"

namespace wtp::features {

class TransactionEncoder {
 public:
  /// The schema must outlive the encoder.
  explicit TransactionEncoder(const FeatureSchema& schema) : schema_{&schema} {}

  /// Encodes one transaction.  Matches the paper's example: bag-of-words
  /// presence for action/scheme/category/supertype/subtype/application, the
  /// private-destination flag, the verified-reputation flag and the numeric
  /// reputation risk.
  [[nodiscard]] util::SparseVector encode(const log::WebTransaction& txn) const;

  [[nodiscard]] const FeatureSchema& schema() const noexcept { return *schema_; }

 private:
  const FeatureSchema* schema_;
};

}  // namespace wtp::features
