#include "features/schema_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace wtp::features {

namespace {

constexpr const char* kMagic = "wtp_schema v1";

void write_vocabulary(std::ostream& out, const char* key,
                      const std::vector<std::string>& values) {
  out << key << ' ' << values.size() << '\n';
  for (const auto& value : values) out << value << '\n';
}

std::vector<std::string> read_vocabulary(std::istream& in, const std::string& key) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"load_schema: unexpected end before '" + key + "'"};
  }
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || line.substr(0, space) != key) {
    throw std::runtime_error{"load_schema: expected '" + key + " <n>', got '" +
                             line + "'"};
  }
  const std::size_t count = std::stoul(line.substr(space + 1));
  std::vector<std::string> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error{"load_schema: truncated '" + key + "' section"};
    }
    values.push_back(line);
  }
  return values;
}

}  // namespace

void save_schema(std::ostream& out, const FeatureSchema& schema) {
  out << kMagic << '\n';
  write_vocabulary(out, "categories", schema.categories());
  write_vocabulary(out, "super_types", schema.super_types());
  write_vocabulary(out, "sub_types", schema.sub_types());
  write_vocabulary(out, "application_types", schema.application_types());
}

void save_schema_file(const std::string& path, const FeatureSchema& schema) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"save_schema_file: cannot open '" + path + "'"};
  save_schema(out, schema);
}

FeatureSchema load_schema(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error{"load_schema: missing magic line"};
  }
  auto categories = read_vocabulary(in, "categories");
  auto super_types = read_vocabulary(in, "super_types");
  auto sub_types = read_vocabulary(in, "sub_types");
  auto application_types = read_vocabulary(in, "application_types");
  return FeatureSchema{std::move(categories), std::move(super_types),
                       std::move(sub_types), std::move(application_types)};
}

FeatureSchema load_schema_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_schema_file: cannot open '" + path + "'"};
  return load_schema(in);
}

}  // namespace wtp::features
