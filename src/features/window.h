// Sliding-window aggregation of transactions into feature vectors
// (paper §III-C).
//
// Windows have duration D and move by a shifting factor S <= D, so
// consecutive windows overlap by D-S seconds (the paper retains D=60s,
// S=30s: a new feature vector every 30 seconds).  All transactions of one
// user (or one host) falling in a window are aggregated into a single
// vector: bag-of-words columns by logical disjunction, numeric columns
// (private flag, reputation risk, reputation verified) by averaging over the
// window's transactions.  Empty windows produce no vector.
#pragma once

#include <span>
#include <vector>

#include "features/encoder.h"
#include "features/schema.h"
#include "log/transaction.h"
#include "util/sparse_vector.h"
#include "util/time.h"

namespace wtp::features {

struct WindowConfig {
  util::UnixSeconds duration_s = 60;  ///< D
  util::UnixSeconds shift_s = 30;     ///< S, must satisfy 0 < S <= D

  friend bool operator==(const WindowConfig&, const WindowConfig&) = default;
};

/// One aggregated transaction window.
struct Window {
  util::UnixSeconds start = 0;  ///< inclusive
  util::UnixSeconds end = 0;    ///< exclusive (start + D)
  std::size_t transaction_count = 0;
  util::SparseVector features;
};

class WindowAggregator {
 public:
  /// Throws std::invalid_argument unless 0 < S <= D.  The schema must
  /// outlive the aggregator.
  WindowAggregator(const FeatureSchema& schema, WindowConfig config);

  /// Aggregates a time-sorted transaction sequence belonging to a single
  /// user or host.  Window 0 starts at the first transaction's timestamp;
  /// empty windows are skipped.
  [[nodiscard]] std::vector<Window> aggregate(
      std::span<const log::WebTransaction> txns) const;

  /// Aggregates one explicit set of transactions into a single feature
  /// vector (used by tests mirroring the paper's worked example, and by the
  /// composition-time benchmark, Fig. 5).
  [[nodiscard]] util::SparseVector aggregate_single(
      std::span<const log::WebTransaction> txns) const;

  [[nodiscard]] const WindowConfig& config() const noexcept { return config_; }
  [[nodiscard]] const FeatureSchema& schema() const noexcept { return *schema_; }

 private:
  const FeatureSchema* schema_;
  WindowConfig config_;
};

/// Convenience: strips the timing metadata, returning just the vectors.
[[nodiscard]] std::vector<util::SparseVector> window_vectors(
    const std::vector<Window>& windows);

}  // namespace wtp::features
