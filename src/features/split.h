// Dataset manipulation: grouping transactions per user/device and the two
// chronological splits the paper uses (75/25 train/test, and the week-t
// observed/subsequent epoch split of the novelty analysis).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "log/transaction.h"
#include "util/time.h"

namespace wtp::features {

/// Groups by user_id, preserving time order within each group.
[[nodiscard]] std::map<std::string, std::vector<log::WebTransaction>> group_by_user(
    std::span<const log::WebTransaction> txns);

/// Groups by device_id, preserving time order within each group.
[[nodiscard]] std::map<std::string, std::vector<log::WebTransaction>> group_by_device(
    std::span<const log::WebTransaction> txns);

struct TrainTestSplit {
  std::vector<log::WebTransaction> train;
  std::vector<log::WebTransaction> test;
};

/// Splits a time-sorted sequence chronologically: the oldest
/// `train_fraction` of transactions become the training set (paper §IV-B
/// uses 0.75).  Throws std::invalid_argument for fractions outside [0,1].
[[nodiscard]] TrainTestSplit chronological_split(
    std::span<const log::WebTransaction> txns, double train_fraction);

struct EpochSplit {
  std::vector<log::WebTransaction> observed;    ///< before t
  std::vector<log::WebTransaction> subsequent;  ///< at/after t
};

/// Splits a time-sorted sequence at an absolute epoch delimiter t.
[[nodiscard]] EpochSplit epoch_split(std::span<const log::WebTransaction> txns,
                                     util::UnixSeconds t);

/// Users with at least `min_transactions` transactions (the paper filters
/// out users with fewer than 1,500 as "not representative enough", keeping
/// 25 of 36).  Returns user ids in ascending transaction-count order is NOT
/// guaranteed; ids are returned sorted lexicographically.
[[nodiscard]] std::vector<std::string> filter_users(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user,
    std::size_t min_transactions);

}  // namespace wtp::features
