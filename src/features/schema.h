// Feature-space layout: maps transaction fields to feature-vector columns.
//
// Reproduces Tab. I of the paper.  Fixed groups first, then bag-of-words
// vocabularies in a deterministic order:
//
//   group                columns  aggregation
//   http action          4        disjunction (binary bag-of-words)
//   uri scheme           2        disjunction
//   public address flag  1        average (numeric: fraction private)
//   reputation (risk)    1        average (numeric: 0 / 0.5 / 1)
//   reputation verified  1        average (numeric; the paper's worked
//                                 example averages 1,1,0 -> 0.667)
//   category             |Vcat|   disjunction
//   supertype            |Vsup|   disjunction
//   subtype              |Vsub|   disjunction
//   application type     |Vapp|   disjunction
//
// With paper-scale vocabularies (105/8/257/464) the total is 843 columns.
// Vocabularies are learned from training data; values unseen at schema-build
// time have no column and are ignored at encode time (standard bag-of-words
// behaviour on out-of-vocabulary test values).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/transaction.h"

namespace wtp::features {

enum class FeatureGroup : std::uint8_t {
  kHttpAction,
  kUriScheme,
  kPrivateFlag,
  kReputationRisk,
  kReputationVerified,
  kCategory,
  kSuperType,
  kSubType,
  kApplicationType,
};
inline constexpr int kFeatureGroupCount = 9;

[[nodiscard]] std::string_view to_string(FeatureGroup group) noexcept;

class FeatureSchema {
 public:
  /// Builds a schema from explicit vocabularies.  Each vocabulary is
  /// deduplicated and sorted so the layout is independent of input order.
  FeatureSchema(std::vector<std::string> categories,
                std::vector<std::string> super_types,
                std::vector<std::string> sub_types,
                std::vector<std::string> application_types);

  /// Scans transactions and collects the observed vocabularies.
  [[nodiscard]] static FeatureSchema from_transactions(
      std::span<const log::WebTransaction> txns);

  /// Total number of feature columns (843 at paper scale).
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  [[nodiscard]] std::size_t group_offset(FeatureGroup group) const noexcept;
  [[nodiscard]] std::size_t group_size(FeatureGroup group) const noexcept;

  /// The group a column belongs to.
  [[nodiscard]] FeatureGroup column_group(std::size_t column) const;

  /// Column index for a vocabulary value; nullopt when out-of-vocabulary.
  [[nodiscard]] std::optional<std::size_t> category_column(std::string_view value) const;
  [[nodiscard]] std::optional<std::size_t> super_type_column(std::string_view value) const;
  [[nodiscard]] std::optional<std::size_t> sub_type_column(std::string_view value) const;
  [[nodiscard]] std::optional<std::size_t> application_type_column(std::string_view value) const;

  /// Columns for the fixed fields.
  [[nodiscard]] std::size_t http_action_column(log::HttpAction action) const noexcept;
  [[nodiscard]] std::size_t uri_scheme_column(log::UriScheme scheme) const noexcept;
  [[nodiscard]] std::size_t private_flag_column() const noexcept;
  [[nodiscard]] std::size_t reputation_risk_column() const noexcept;
  [[nodiscard]] std::size_t reputation_verified_column() const noexcept;

  /// True for columns aggregated by average rather than disjunction.
  [[nodiscard]] bool is_numeric_column(std::size_t column) const noexcept;

  /// The numeric (average-aggregated) columns, ascending — the bitset layout
  /// hint for util::FeatureMatrix::ensure_bitset (DESIGN §11).
  [[nodiscard]] std::vector<std::uint32_t> numeric_columns() const;

  /// Human-readable column name ("category:Games", "action:GET", ...).
  [[nodiscard]] std::string column_name(std::size_t column) const;

  /// Tab. I rows: per-group column counts in paper order.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> composition() const;

  /// Sorted vocabularies (schema layout order).
  [[nodiscard]] const std::vector<std::string>& categories() const noexcept { return categories_; }
  [[nodiscard]] const std::vector<std::string>& super_types() const noexcept { return super_types_; }
  [[nodiscard]] const std::vector<std::string>& sub_types() const noexcept { return sub_types_; }
  [[nodiscard]] const std::vector<std::string>& application_types() const noexcept { return application_types_; }

 private:
  void build_layout();

  std::vector<std::string> categories_;
  std::vector<std::string> super_types_;
  std::vector<std::string> sub_types_;
  std::vector<std::string> application_types_;
  std::unordered_map<std::string, std::size_t> category_index_;
  std::unordered_map<std::string, std::size_t> super_type_index_;
  std::unordered_map<std::string, std::size_t> sub_type_index_;
  std::unordered_map<std::string, std::size_t> application_type_index_;
  std::size_t offsets_[kFeatureGroupCount] = {};
  std::size_t sizes_[kFeatureGroupCount] = {};
  std::size_t dimension_ = 0;
};

}  // namespace wtp::features
