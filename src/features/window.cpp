#include "features/window.h"

#include <algorithm>
#include <stdexcept>

namespace wtp::features {

WindowAggregator::WindowAggregator(const FeatureSchema& schema, WindowConfig config)
    : schema_{&schema}, config_{config} {
  if (config.shift_s <= 0 || config.duration_s <= 0 ||
      config.shift_s > config.duration_s) {
    throw std::invalid_argument{
        "WindowAggregator: require 0 < shift <= duration (got S=" +
        std::to_string(config.shift_s) + ", D=" + std::to_string(config.duration_s) + ")"};
  }
}

namespace {

/// Merges per-transaction encodings into one window vector: disjunction for
/// bag-of-words columns, average (over the transaction count) for numeric
/// columns.
util::SparseVector merge_encoded(std::span<const util::SparseVector> encoded,
                                 const FeatureSchema& schema) {
  if (encoded.empty()) return {};
  util::SparseAccumulator acc;
  const double inverse_count = 1.0 / static_cast<double>(encoded.size());
  for (const auto& vector : encoded) {
    for (const auto& entry : vector.entries()) {
      if (schema.is_numeric_column(entry.index)) {
        acc.add(entry.index, entry.value * inverse_count);
      } else {
        acc.max(entry.index, entry.value);
      }
    }
  }
  return acc.build();
}

}  // namespace

util::SparseVector WindowAggregator::aggregate_single(
    std::span<const log::WebTransaction> txns) const {
  const TransactionEncoder encoder{*schema_};
  std::vector<util::SparseVector> encoded;
  encoded.reserve(txns.size());
  for (const auto& txn : txns) encoded.push_back(encoder.encode(txn));
  return merge_encoded(encoded, *schema_);
}

std::vector<Window> WindowAggregator::aggregate(
    std::span<const log::WebTransaction> txns) const {
  std::vector<Window> windows;
  if (txns.empty()) return windows;

  // Encode each transaction exactly once: overlapping windows (S < D) would
  // otherwise re-encode the same transaction D/S times.
  const TransactionEncoder encoder{*schema_};
  std::vector<util::SparseVector> encoded;
  encoded.reserve(txns.size());
  for (const auto& txn : txns) encoded.push_back(encoder.encode(txn));

  const util::UnixSeconds origin = txns.front().timestamp;
  const util::UnixSeconds duration = config_.duration_s;
  const util::UnixSeconds shift = config_.shift_s;

  std::size_t begin_index = 0;  // first txn with timestamp >= window start
  std::int64_t k = 0;
  while (true) {
    const util::UnixSeconds window_start = origin + k * shift;
    const util::UnixSeconds window_end = window_start + duration;
    while (begin_index < txns.size() &&
           txns[begin_index].timestamp < window_start) {
      ++begin_index;
    }
    if (begin_index >= txns.size()) break;
    const util::UnixSeconds next_txn = txns[begin_index].timestamp;
    if (next_txn >= window_end) {
      // Window empty: jump to the first window index containing next_txn,
      // i.e. the smallest k with window_start > next_txn - duration.
      const std::int64_t jump = (next_txn - duration - origin) / shift + 1;
      k = std::max(k + 1, jump);
      continue;
    }
    std::size_t end_index = begin_index;
    while (end_index < txns.size() && txns[end_index].timestamp < window_end) {
      ++end_index;
    }
    Window window;
    window.start = window_start;
    window.end = window_end;
    window.transaction_count = end_index - begin_index;
    window.features = merge_encoded(
        std::span{encoded}.subspan(begin_index, end_index - begin_index), *schema_);
    windows.push_back(std::move(window));
    ++k;
  }
  return windows;
}

std::vector<util::SparseVector> window_vectors(const std::vector<Window>& windows) {
  std::vector<util::SparseVector> vectors;
  vectors.reserve(windows.size());
  for (const auto& window : windows) vectors.push_back(window.features);
  return vectors;
}

}  // namespace wtp::features
