#include "features/encoder.h"

namespace wtp::features {

util::SparseVector TransactionEncoder::encode(const log::WebTransaction& txn) const {
  std::vector<util::SparseVector::Entry> entries;
  entries.reserve(10);
  const FeatureSchema& schema = *schema_;

  entries.push_back({schema.http_action_column(txn.action), 1.0});
  entries.push_back({schema.uri_scheme_column(txn.scheme), 1.0});
  if (txn.private_destination) {
    entries.push_back({schema.private_flag_column(), 1.0});
  }
  const double risk = log::reputation_risk(txn.reputation);
  if (risk != 0.0) {
    entries.push_back({schema.reputation_risk_column(), risk});
  }
  if (log::reputation_verified(txn.reputation)) {
    entries.push_back({schema.reputation_verified_column(), 1.0});
  }
  if (const auto column = schema.category_column(txn.category)) {
    entries.push_back({*column, 1.0});
  }
  const auto media = log::split_media_type(txn.media_type);
  if (const auto column = schema.super_type_column(media.super_type)) {
    entries.push_back({*column, 1.0});
  }
  if (const auto column = schema.sub_type_column(media.sub_type)) {
    entries.push_back({*column, 1.0});
  }
  if (const auto column = schema.application_type_column(txn.application_type)) {
    entries.push_back({*column, 1.0});
  }
  return util::SparseVector{std::move(entries)};
}

}  // namespace wtp::features
