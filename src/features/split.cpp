#include "features/split.h"

#include <algorithm>
#include <stdexcept>

namespace wtp::features {

namespace {

template <typename KeyFn>
std::map<std::string, std::vector<log::WebTransaction>> group_by(
    std::span<const log::WebTransaction> txns, KeyFn key) {
  std::map<std::string, std::vector<log::WebTransaction>> groups;
  for (const auto& txn : txns) groups[key(txn)].push_back(txn);
  return groups;
}

}  // namespace

std::map<std::string, std::vector<log::WebTransaction>> group_by_user(
    std::span<const log::WebTransaction> txns) {
  return group_by(txns, [](const log::WebTransaction& t) { return t.user_id; });
}

std::map<std::string, std::vector<log::WebTransaction>> group_by_device(
    std::span<const log::WebTransaction> txns) {
  return group_by(txns, [](const log::WebTransaction& t) { return t.device_id; });
}

TrainTestSplit chronological_split(std::span<const log::WebTransaction> txns,
                                   double train_fraction) {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument{"chronological_split: fraction outside [0,1]"};
  }
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(txns.size()));
  TrainTestSplit split;
  split.train.assign(txns.begin(), txns.begin() + static_cast<std::ptrdiff_t>(cut));
  split.test.assign(txns.begin() + static_cast<std::ptrdiff_t>(cut), txns.end());
  return split;
}

EpochSplit epoch_split(std::span<const log::WebTransaction> txns,
                       util::UnixSeconds t) {
  const auto cut = std::partition_point(
      txns.begin(), txns.end(),
      [t](const log::WebTransaction& txn) { return txn.timestamp < t; });
  EpochSplit split;
  split.observed.assign(txns.begin(), cut);
  split.subsequent.assign(cut, txns.end());
  return split;
}

std::vector<std::string> filter_users(
    const std::map<std::string, std::vector<log::WebTransaction>>& by_user,
    std::size_t min_transactions) {
  std::vector<std::string> users;
  for (const auto& [user, txns] : by_user) {
    if (txns.size() >= min_transactions) users.push_back(user);
  }
  return users;  // std::map iteration is already sorted
}

}  // namespace wtp::features
