// Feature-schema persistence.
//
// A trained profile is only meaningful together with the schema that laid
// out its feature columns: new transactions must be encoded with the exact
// same column assignment.  This text format stores the four vocabularies;
// the fixed groups are implied by the layout rules in schema.h.
//
//   wtp_schema v1
//   categories <n>
//   <value>          (n lines)
//   super_types <n>
//   ...
//   sub_types <n>
//   ...
//   application_types <n>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "features/schema.h"

namespace wtp::features {

void save_schema(std::ostream& out, const FeatureSchema& schema);
void save_schema_file(const std::string& path, const FeatureSchema& schema);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] FeatureSchema load_schema(std::istream& in);
[[nodiscard]] FeatureSchema load_schema_file(const std::string& path);

}  // namespace wtp::features
