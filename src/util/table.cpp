#include "util/table.h"

#include <algorithm>

namespace wtp::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render(const std::string& title) const {
  // Compute column widths across header + all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      line += cell;
      if (i + 1 < widths.size()) {
        line.append(widths[i] - cell.size() + 2, ' ');
      }
    }
    // strip trailing spaces
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };

  std::string out;
  if (!title.empty()) out += title + '\n';
  if (!header_.empty()) {
    out += render_row(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    out += std::string(total > 2 ? total - 2 : total, '-') + '\n';
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace wtp::util
