// Sparse feature vector: sorted (index, value) pairs over a fixed-dimension
// feature space.  Window feature vectors have ~10-40 non-zeros out of 843
// columns (Tab. I), so both the encoder and the SVM kernels operate on this
// representation.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

namespace wtp::util {

/// Immutable-after-build sparse vector.  Entries are kept sorted by index
/// with no duplicates and no explicit zeros.
class SparseVector {
 public:
  struct Entry {
    std::size_t index;
    double value;

    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  SparseVector() = default;

  /// Builds from possibly-unsorted entries; duplicate indices are summed and
  /// zero-valued results dropped.
  explicit SparseVector(std::vector<Entry> entries);
  SparseVector(std::initializer_list<Entry> entries);

  /// Builds from a dense vector, dropping zeros.
  [[nodiscard]] static SparseVector from_dense(std::span<const double> dense);

  [[nodiscard]] std::span<const Entry> entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Value at `index` (0.0 when absent); O(log nnz).
  [[nodiscard]] double at(std::size_t index) const noexcept;

  /// Dense expansion of length `dimension` (indices beyond it are an error).
  [[nodiscard]] std::vector<double> to_dense(std::size_t dimension) const;

  /// Dot product with another sparse vector (merge join, O(nnz_a + nnz_b)).
  [[nodiscard]] double dot(const SparseVector& other) const noexcept;

  /// Squared Euclidean norm.
  [[nodiscard]] double squared_norm() const noexcept;

  /// Squared Euclidean distance to another sparse vector.
  [[nodiscard]] double squared_distance(const SparseVector& other) const noexcept;

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  std::vector<Entry> entries_;
};

/// Builder that accumulates values by index and emits a normalized
/// SparseVector; used by the window aggregator.
class SparseAccumulator {
 public:
  /// value is added to the current coefficient at index.
  void add(std::size_t index, double value);
  /// coefficient becomes max(current, value) — the "logical disjunction"
  /// aggregation for binary bag-of-words features.
  void max(std::size_t index, double value);

  /// Emits the accumulated vector and resets the accumulator.
  [[nodiscard]] SparseVector build();

 private:
  std::vector<SparseVector::Entry> entries_;  // unsorted, possibly duplicated
  std::vector<SparseVector::Entry> maxed_;
};

}  // namespace wtp::util
