#include "util/feature_matrix.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace wtp::util {

namespace {

/// Scratch for dot_all: a dense query expansion reused across calls.  The
/// buffer is kept all-zero between calls (scatter, use, unscatter), so
/// growing it only zero-fills the new tail.  thread_local keeps concurrent
/// scorers (serve shards, grid-search workers) independent.
std::vector<double>& dense_scratch(std::size_t cols) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < cols) scratch.resize(cols, 0.0);
  return scratch;
}

void check_index(std::size_t index, std::size_t cols) {
  if (index >= cols) {
    throw std::invalid_argument{"FeatureMatrix: row index " + std::to_string(index) +
                                " >= cols " + std::to_string(cols)};
  }
  if (index > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument{"FeatureMatrix: index exceeds 32-bit range"};
  }
}

}  // namespace

FeatureMatrix FeatureMatrix::from_rows(std::span<const SparseVector> rows,
                                       std::size_t cols) {
  FeatureMatrixBuilder builder;
  for (const auto& row : rows) builder.add_row(row);
  return builder.build(cols);
}

FeatureMatrix::FeatureMatrix(const FeatureMatrix& other)
    : cols_{other.cols_},
      indices_{other.indices_},
      values_{other.values_},
      row_offsets_{other.row_offsets_},
      sq_norms_{other.sq_norms_} {
  const std::scoped_lock lock{other.bitset_mutex_};
  bitset_ = other.bitset_;  // the slot is immutable once set — share it
}

FeatureMatrix::FeatureMatrix(FeatureMatrix&& other) noexcept
    : cols_{other.cols_},
      indices_{std::move(other.indices_)},
      values_{std::move(other.values_)},
      row_offsets_{std::move(other.row_offsets_)},
      sq_norms_{std::move(other.sq_norms_)},
      bitset_{std::move(other.bitset_)} {
  other.cols_ = 0;
  other.row_offsets_ = {0};
}

FeatureMatrix& FeatureMatrix::operator=(const FeatureMatrix& other) {
  if (this == &other) return *this;
  cols_ = other.cols_;
  indices_ = other.indices_;
  values_ = other.values_;
  row_offsets_ = other.row_offsets_;
  sq_norms_ = other.sq_norms_;
  std::shared_ptr<const BitsetSlot> shared;
  {
    const std::scoped_lock lock{other.bitset_mutex_};
    shared = other.bitset_;
  }
  const std::scoped_lock lock{bitset_mutex_};
  bitset_ = std::move(shared);
  return *this;
}

FeatureMatrix& FeatureMatrix::operator=(FeatureMatrix&& other) noexcept {
  if (this == &other) return *this;
  cols_ = other.cols_;
  indices_ = std::move(other.indices_);
  values_ = std::move(other.values_);
  row_offsets_ = std::move(other.row_offsets_);
  sq_norms_ = std::move(other.sq_norms_);
  bitset_ = std::move(other.bitset_);
  other.cols_ = 0;
  other.row_offsets_ = {0};
  return *this;
}

const BitsetStorage* FeatureMatrix::bitset() const {
  const std::scoped_lock lock{bitset_mutex_};
  if (!bitset_) {
    auto slot = std::make_shared<BitsetSlot>();
    slot->storage = BitsetStorage::build(view());
    bitset_ = std::move(slot);
  }
  return bitset_->storage ? &*bitset_->storage : nullptr;
}

void FeatureMatrix::ensure_bitset(std::span<const std::uint32_t> numeric_cols) {
  auto slot = std::make_shared<BitsetSlot>();
  slot->storage = BitsetStorage::build(view(), numeric_cols);
  const std::scoped_lock lock{bitset_mutex_};
  bitset_ = std::move(slot);
}

SparseVector FeatureMatrix::row_vector(std::size_t i) const {
  std::vector<SparseVector::Entry> entries;
  const auto indices = row_indices(i);
  const auto values = row_values(i);
  entries.reserve(indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    entries.push_back({indices[k], values[k]});
  }
  return SparseVector{std::move(entries)};
}

void FeatureMatrix::copy_row_dense(std::size_t i, std::span<double> out) const {
  if (out.size() < cols_) {
    throw std::invalid_argument{"FeatureMatrix::copy_row_dense: buffer holds " +
                                std::to_string(out.size()) + " < cols " +
                                std::to_string(cols_)};
  }
  std::fill(out.begin(), out.end(), 0.0);
  const auto indices = row_indices(i);
  const auto values = row_values(i);
  for (std::size_t k = 0; k < indices.size(); ++k) out[indices[k]] = values[k];
}

void CsrView::dot_all(std::span<const std::uint32_t> query_indices,
                      std::span<const double> query_values,
                      std::span<double> out) const {
  auto& dense = dense_scratch(cols);
  for (std::size_t k = 0; k < query_indices.size(); ++k) {
    if (query_indices[k] < cols) dense[query_indices[k]] = query_values[k];
  }
  const std::size_t n = rows();
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t* idx = indices.data() + row_offsets[r];
    const double* val = values.data() + row_offsets[r];
    const std::size_t len = row_offsets[r + 1] - row_offsets[r];
    double sum = 0.0;
    for (std::size_t k = 0; k < len; ++k) sum += val[k] * dense[idx[k]];
    out[r] = sum;
  }
  for (const std::uint32_t index : query_indices) {
    if (index < cols) dense[index] = 0.0;
  }
}

void CsrView::dot_all(const SparseVector& query, std::span<double> out) const {
  auto& dense = dense_scratch(cols);
  for (const auto& entry : query.entries()) {
    if (entry.index < cols) dense[entry.index] = entry.value;
  }
  const std::size_t n = rows();
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t* idx = indices.data() + row_offsets[r];
    const double* val = values.data() + row_offsets[r];
    const std::size_t len = row_offsets[r + 1] - row_offsets[r];
    double sum = 0.0;
    for (std::size_t k = 0; k < len; ++k) sum += val[k] * dense[idx[k]];
    out[r] = sum;
  }
  for (const auto& entry : query.entries()) {
    if (entry.index < cols) dense[entry.index] = 0.0;
  }
}

void FeatureMatrix::dot_all(std::span<const std::uint32_t> query_indices,
                            std::span<const double> query_values,
                            std::span<double> out) const {
  view().dot_all(query_indices, query_values, out);
}

void FeatureMatrix::dot_all(const SparseVector& query, std::span<double> out) const {
  view().dot_all(query, out);
}

void FeatureMatrixBuilder::add(std::size_t index, double value) {
  if (index > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument{"FeatureMatrixBuilder: index exceeds 32-bit range"};
  }
  pending_.push_back({index, value});
}

void FeatureMatrixBuilder::finish_row() {
  // Normalize exactly like SparseVector: sort, sum duplicates, drop zeros.
  add_row(SparseVector{std::move(pending_)});
  pending_ = {};
}

void FeatureMatrixBuilder::add_row(const SparseVector& row) {
  double sq_norm = 0.0;
  for (const auto& entry : row.entries()) {
    if (entry.index > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument{"FeatureMatrixBuilder: index exceeds 32-bit range"};
    }
    matrix_.indices_.push_back(static_cast<std::uint32_t>(entry.index));
    matrix_.values_.push_back(entry.value);
    sq_norm += entry.value * entry.value;
  }
  matrix_.row_offsets_.push_back(matrix_.indices_.size());
  matrix_.sq_norms_.push_back(sq_norm);
}

void FeatureMatrixBuilder::add_row(const FeatureMatrix& src, std::size_t row) {
  const auto indices = src.row_indices(row);
  const auto values = src.row_values(row);
  matrix_.indices_.insert(matrix_.indices_.end(), indices.begin(), indices.end());
  matrix_.values_.insert(matrix_.values_.end(), values.begin(), values.end());
  matrix_.row_offsets_.push_back(matrix_.indices_.size());
  matrix_.sq_norms_.push_back(src.sq_norm(row));
}

FeatureMatrix FeatureMatrixBuilder::build(std::size_t cols) {
  if (!pending_.empty()) finish_row();
  std::size_t max_index_plus_one = 0;
  for (const std::uint32_t index : matrix_.indices_) {
    max_index_plus_one = std::max(max_index_plus_one, std::size_t{index} + 1);
  }
  if (cols == 0) {
    matrix_.cols_ = max_index_plus_one;
  } else {
    if (max_index_plus_one > cols) check_index(max_index_plus_one - 1, cols);
    matrix_.cols_ = cols;
  }
  FeatureMatrix result = std::move(matrix_);
  matrix_ = {};
  return result;
}

}  // namespace wtp::util
