#include "util/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wtp::util {

namespace {

/// Sorts, merges duplicates (by sum), and drops zeros.
std::vector<SparseVector::Entry> normalize(std::vector<SparseVector::Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  std::vector<SparseVector::Entry> out;
  out.reserve(entries.size());
  for (const auto& entry : entries) {
    if (!out.empty() && out.back().index == entry.index) {
      out.back().value += entry.value;
    } else {
      out.push_back(entry);
    }
  }
  std::erase_if(out, [](const auto& e) { return e.value == 0.0; });
  return out;
}

}  // namespace

SparseVector::SparseVector(std::vector<Entry> entries)
    : entries_{normalize(std::move(entries))} {}

SparseVector::SparseVector(std::initializer_list<Entry> entries)
    : SparseVector{std::vector<Entry>{entries}} {}

SparseVector SparseVector::from_dense(std::span<const double> dense) {
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) entries.push_back({i, dense[i]});
  }
  SparseVector vec;
  vec.entries_ = std::move(entries);  // already sorted & unique
  return vec;
}

double SparseVector::at(std::size_t index) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const Entry& e, std::size_t target) { return e.index < target; });
  if (it != entries_.end() && it->index == index) return it->value;
  return 0.0;
}

std::vector<double> SparseVector::to_dense(std::size_t dimension) const {
  std::vector<double> dense(dimension, 0.0);
  for (const auto& entry : entries_) {
    if (entry.index >= dimension) {
      throw std::out_of_range{"SparseVector::to_dense: index " +
                              std::to_string(entry.index) + " >= dimension " +
                              std::to_string(dimension)};
    }
    dense[entry.index] = entry.value;
  }
  return dense;
}

double SparseVector::dot(const SparseVector& other) const noexcept {
  double sum = 0.0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->index < b->index) {
      ++a;
    } else if (b->index < a->index) {
      ++b;
    } else {
      sum += a->value * b->value;
      ++a;
      ++b;
    }
  }
  return sum;
}

double SparseVector::squared_norm() const noexcept {
  double sum = 0.0;
  for (const auto& entry : entries_) sum += entry.value * entry.value;
  return sum;
}

double SparseVector::squared_distance(const SparseVector& other) const noexcept {
  double sum = 0.0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    if (b == other.entries_.end() || (a != entries_.end() && a->index < b->index)) {
      sum += a->value * a->value;
      ++a;
    } else if (a == entries_.end() || b->index < a->index) {
      sum += b->value * b->value;
      ++b;
    } else {
      const double diff = a->value - b->value;
      sum += diff * diff;
      ++a;
      ++b;
    }
  }
  return sum;
}

void SparseAccumulator::add(std::size_t index, double value) {
  entries_.push_back({index, value});
}

void SparseAccumulator::max(std::size_t index, double value) {
  maxed_.push_back({index, value});
}

SparseVector SparseAccumulator::build() {
  // Summed entries go through the normal constructor; maxed entries are
  // deduplicated by maximum first, then merged in.
  std::sort(maxed_.begin(), maxed_.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  std::vector<SparseVector::Entry> max_merged;
  for (const auto& entry : maxed_) {
    if (!max_merged.empty() && max_merged.back().index == entry.index) {
      max_merged.back().value = std::max(max_merged.back().value, entry.value);
    } else {
      max_merged.push_back(entry);
    }
  }
  for (const auto& entry : max_merged) entries_.push_back(entry);
  SparseVector result{std::move(entries_)};
  entries_ = {};
  maxed_ = {};
  return result;
}

}  // namespace wtp::util
