// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through wtp::util::Rng so that a single
// 64-bit seed reproduces an entire synthetic trace, grid search, or benchmark
// run bit-for-bit across platforms.  The generator is xoshiro256** seeded via
// splitmix64 (the initialization recommended by the xoshiro authors); it is
// not cryptographic and must never be used for security purposes.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace wtp::util {

/// splitmix64 step: used to expand a single seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions, though the built-in helpers below are preferred
/// for cross-platform determinism (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from a single seed via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x5eedu) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output (xoshiro256**).
  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator; used to give each synthetic user
  /// / worker thread its own stream without correlation.
  [[nodiscard]] constexpr Rng fork() noexcept { return Rng{(*this)()}; }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform() noexcept {
    // 53 high-quality bits -> mantissa of a double.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument{"Rng::uniform_index: n must be > 0"};
    // Lemire-style rejection for unbiased bounded integers.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument{"Rng::uniform_int: lo > hi"};
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (no state caching -> deterministic).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();  // avoid log(0)
    const double u2 = uniform();
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (mean 1/rate). Models inter-arrival gaps.
  [[nodiscard]] double exponential(double rate) {
    if (rate <= 0.0) throw std::invalid_argument{"Rng::exponential: rate <= 0"};
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Poisson-distributed count (Knuth for small mean, normal approx beyond).
  [[nodiscard]] std::uint64_t poisson(double mean) {
    if (mean < 0.0) throw std::invalid_argument{"Rng::poisson: mean < 0"};
    if (mean == 0.0) return 0;
    if (mean > 60.0) {
      const double x = std::round(normal(mean, std::sqrt(mean)));
      return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
    }
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }

  /// Draws an index from an explicit (unnormalized) weight vector.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (weights.empty() || total <= 0.0) {
      throw std::invalid_argument{"Rng::weighted_index: weights must be non-empty with positive sum"};
    }
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;  // floating point slack
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform_index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks {0, .., n-1}: precomputes the CDF once so draws
/// are O(log n).  Synthetic users pick favourite sites/categories with Zipf
/// weights, matching the heavy-tailed popularity seen in real web traffic.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent) : cdf_(n) {
    if (n == 0) throw std::invalid_argument{"ZipfDistribution: n must be > 0"};
    if (exponent < 0.0) throw std::invalid_argument{"ZipfDistribution: exponent must be >= 0"};
    double cumulative = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      cumulative += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
      cdf_[rank] = cumulative;
    }
    for (auto& value : cdf_) value /= cumulative;
  }

  [[nodiscard]] std::size_t operator()(Rng& rng) const {
    const double u = rng.uniform();
    // Binary search the first CDF entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wtp::util
