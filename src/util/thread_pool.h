// Fixed-size worker pool used to parallelize grid searches and per-user model
// training.  Tasks are type-erased std::function<void()>; parallel_for
// provides a deterministic index-sharded helper on top.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wtp::util {

/// A minimal but robust thread pool.
///
/// Guarantees:
///  * submit() never blocks except briefly on the queue mutex.
///  * wait_idle() returns once every submitted task has finished.
///  * The destructor drains outstanding tasks before joining.
/// Exceptions escaping a task terminate (tasks are expected to capture and
/// report their own failures; experiment code stores per-task results).
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [0, count) across the pool and waits for all of
/// them.  fn must be safe to call concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace wtp::util
