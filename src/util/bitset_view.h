// Bitset companion representation for binary-dominant feature matrices
// (DESIGN §11).
//
// The paper's feature space is ~840 binary bag-of-words columns plus 3
// numeric ones (Tab. I), so a CSR row is almost entirely "these columns are
// exactly 1.0".  The bitset plane stores each row twice: the binary columns
// as fixed-width 64-bit words (bit c set ⇔ row has value 1.0 at column c)
// and the few numeric columns densely alongside.  A sparse dot then becomes
// AND+popcount over the words plus a tiny numeric correction.
//
// Bit-exactness contract.  Every dot computed through this plane is
// REQUIRED to be bit-identical to CsrView::dot_all (the scalar oracle),
// which streams row entries in ascending column order.  Popcounts are exact
// integers, but the numeric columns interleave with the binary ones, so the
// combine step must reproduce the oracle's summation ORDER, not just its
// terms:
//
//   * The binary columns between two consecutive numeric columns form a
//     *segment*; the oracle adds `count` many exact 1.0 terms there.  When
//     the running sum is an integer with |sum| small enough that every
//     intermediate is exactly representable, `sum += count` equals the
//     term-by-term loop; otherwise we fall back to adding 1.0 `count` times
//     (count <= query nnz, so this is cheap and rare).
//   * Between segments the numeric products are added in column order from
//     the dense side storage.  Adding `q*0.0` for a column the row does not
//     touch is an exact no-op (the sum starts at +0.0 and products are
//     finite by construction, so signed zeros cannot leak).
//
// Conformance.  The representation only engages when both sides satisfy the
// layout: row/query values at binary columns are exactly 1.0, numeric
// values are finite, and query indices >= cols are skipped (matching the
// oracle's bounds guard).  Anything else falls back to the CSR path, which
// is always correct.
//
// SIMD.  The per-row work is pluggable via BitsetDotOps so
// svm/kernel_backends.cpp can install AVX2/AVX-512 popcount
// implementations.  The fused dot_rows entry (popcount + combine) is
// stamped into every backend from util/bitset_dot_body.inc, so the
// floating-point operation sequence is literally the same source everywhere
// — cross-backend bit-identity holds by construction (the equivalence
// suites still enforce it) and only the popcount instructions differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/sparse_vector.h"

namespace wtp::util {

struct CsrView;

/// Non-owning view of a bitset block: `row_count * words_per_row` words plus
/// `row_count * numeric_cols.size()` dense numeric values.  Valid over a
/// BitsetStorage or over memory-mapped model blobs (svm/model_io v2).
struct BitsetView {
  std::size_t cols = 0;
  std::size_t row_count = 0;
  std::size_t words_per_row = 0;
  std::span<const std::uint64_t> words;         ///< row-major, row_count * words_per_row
  std::span<const std::uint32_t> numeric_cols;  ///< ascending, < cols
  std::span<const double> numeric_values;       ///< row-major, row_count * numeric_cols.size()

  [[nodiscard]] const std::uint64_t* row_words(std::size_t i) const noexcept {
    return words.data() + i * words_per_row;
  }
  [[nodiscard]] const double* row_numeric(std::size_t i) const noexcept {
    return numeric_values.data() + i * numeric_cols.size();
  }
  /// Two views share a layout when queries encoded against one are valid
  /// against the other (same column count and numeric column set).
  [[nodiscard]] bool same_layout(const BitsetView& other) const noexcept;

  /// View of rows [begin, begin + count) — same layout, sliced storage.
  [[nodiscard]] BitsetView rows_slice(std::size_t begin,
                                      std::size_t count) const noexcept {
    return BitsetView{cols,
                      count,
                      words_per_row,
                      words.subspan(begin * words_per_row, count * words_per_row),
                      numeric_cols,
                      numeric_values.subspan(begin * numeric_cols.size(),
                                             count * numeric_cols.size())};
  }
};

/// A query encoded against a specific layout: words + dense numeric values
/// aligned with the layout's numeric_cols.  Reusable scratch — encode()
/// reuses capacity across calls.
struct BitsetQuery {
  std::vector<std::uint64_t> words;
  std::vector<double> numeric;

  /// Encodes (indices, values) against `layout`.  Returns false (query not
  /// conforming — caller must use the CSR path) when a value at a binary
  /// column is not exactly 1.0 or a value at a numeric column is not
  /// finite.  Indices >= layout.cols are skipped like the scalar oracle.
  bool encode(const BitsetView& layout, std::span<const std::uint32_t> indices,
              std::span<const double> values);
  bool encode(const BitsetView& layout, const SparseVector& query);
};

/// Pluggable integer word kernels.  All three produce mathematically (hence
/// bit-) identical counts; only speed differs.
struct BitsetDotOps {
  const char* name;
  /// popcount(a & b) over n words.
  std::uint64_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n);
  /// out[r] = popcount(query & rows[r]) for n_rows rows of w words each.
  void (*and_popcount_rows)(const std::uint64_t* query, const std::uint64_t* rows,
                            std::size_t w, std::size_t n_rows, std::uint64_t* out);
  /// out[q * n_rows + r] = popcount(queries[q] & rows[r]): the blocked
  /// mini-popcount-GEMM behind kernel_block.
  void (*and_popcount_block)(const std::uint64_t* queries, std::size_t n_queries,
                             const std::uint64_t* rows, std::size_t n_rows,
                             std::size_t w, std::uint64_t* out);
  /// Fused dot of one encoded query against every row: AND+popcount plus the
  /// order-exact combine, out[r] = query . row_r bit-identical to
  /// CsrView::dot_all.  `query_numeric` holds one value per layout numeric
  /// column; `out` must have room for row_count results.
  void (*dot_rows)(const BitsetView& m, const std::uint64_t* query_words,
                   const double* query_numeric, double* out);
};

/// Portable backend (std::popcount).  The reference the SIMD backends are
/// tested against — and the bit-exactness oracle's twin: counts are exact
/// integers either way.
[[nodiscard]] const BitsetDotOps& scalar_bitset_ops() noexcept;

/// Owning bitset block built from CSR storage.
class BitsetStorage {
 public:
  /// More numeric columns than this and the dense side defeats the point;
  /// build() refuses and the matrix stays CSR-only.
  static constexpr std::size_t kMaxNumericColumns = 16;

  /// Builds the dual representation of `matrix`.  With an empty
  /// `numeric_cols` hint the numeric set is auto-detected (a column is
  /// numeric iff any stored value != 1.0); a non-empty hint fixes the set
  /// (ascending, schema-derived) and rows must conform to it.  Returns
  /// nullopt when the matrix is not representable: cols == 0, too many
  /// numeric columns, non-finite numeric values, or (hinted) a non-1.0
  /// value at a binary column.
  [[nodiscard]] static std::optional<BitsetStorage> build(
      const CsrView& matrix, std::span<const std::uint32_t> numeric_cols = {});

  [[nodiscard]] BitsetView view() const noexcept {
    return BitsetView{cols_, rows_, words_per_row_, words_, numeric_cols_,
                      numeric_values_};
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_per_row_; }
  [[nodiscard]] std::span<const std::uint32_t> numeric_cols() const noexcept {
    return numeric_cols_;
  }

 private:
  BitsetStorage() = default;

  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> numeric_cols_;
  std::vector<double> numeric_values_;
};

/// Dot of an encoded query against every row: out[r] = query . row_r,
/// bit-identical to CsrView::dot_all with the query's original entries.
void bitset_dot_rows(const BitsetView& matrix, const BitsetQuery& query,
                     std::span<double> out,
                     const BitsetDotOps& ops = scalar_bitset_ops());
/// Row `i` of the matrix as the query (rows are conforming by construction,
/// so this never falls back).
void bitset_dot_rows(const BitsetView& matrix, std::size_t i, std::span<double> out,
                     const BitsetDotOps& ops = scalar_bitset_ops());

/// A block of queries encoded against one layout.  Queries that do not
/// conform are flagged (ok(q) == false) and left to the caller's CSR
/// fallback.  When the query matrix carries its own bitset with the SAME
/// layout, its storage is borrowed zero-copy instead of re-encoded.
class BitsetQueryBlock {
 public:
  void encode(const BitsetView& layout, const CsrView& queries,
              const BitsetView* queries_bitset = nullptr);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool all_ok() const noexcept { return all_ok_; }
  [[nodiscard]] bool ok(std::size_t q) const noexcept {
    return all_ok_ || ok_[q] != 0;
  }
  [[nodiscard]] const std::uint64_t* query_words(std::size_t q) const noexcept {
    return words_.data() + q * words_per_row_;
  }
  [[nodiscard]] const double* query_numeric(std::size_t q) const noexcept {
    return numeric_.data() + q * numeric_count_;
  }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

 private:
  std::size_t count_ = 0;
  std::size_t words_per_row_ = 0;
  std::size_t numeric_count_ = 0;
  bool all_ok_ = true;
  std::span<const std::uint64_t> words_;
  std::span<const double> numeric_;
  std::vector<char> ok_;
  std::vector<std::uint64_t> owned_words_;
  std::vector<double> owned_numeric_;
  BitsetQuery row_scratch_;
};

/// Blocked dot: out[q * matrix.row_count + r] = query_q . row_r for every
/// conforming query; rows of `out` for non-conforming queries are left
/// untouched.  Bit-identical per query to bitset_dot_rows.
void bitset_dot_block(const BitsetView& matrix, const BitsetQueryBlock& queries,
                      std::span<double> out,
                      const BitsetDotOps& ops = scalar_bitset_ops());

}  // namespace wtp::util
