#include "util/csv.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace wtp::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_format_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.append(csv_escape(fields[i]));
  }
  return out;
}

std::vector<std::string> csv_parse_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) throw std::runtime_error{"csv_parse_row: unterminated quote"};
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_format_row(fields) << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty() || line == "\r") continue;
    // A quoted field may span physical lines; keep appending lines while
    // the row's quotes are unbalanced.
    for (;;) {
      try {
        fields = csv_parse_row(line);
        return true;
      } catch (const std::runtime_error&) {
        std::string continuation;
        if (!std::getline(in_, continuation)) throw;  // truly unterminated
        line.push_back('\n');
        line.append(continuation);
      }
    }
  }
  return false;
}

}  // namespace wtp::util
