#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace wtp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock{mutex_};
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock{mutex_};
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Shard into contiguous chunks, one per worker, to keep per-task overhead
  // negligible even for large counts while preserving index determinism
  // inside each chunk.
  const std::size_t shards = std::min(count, pool.thread_count() * 4);
  const std::size_t chunk = (count + shards - 1) / shards;
  std::atomic<std::size_t> pending{0};
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    pending.fetch_add(1, std::memory_order_relaxed);
    pool.submit([&fn, begin, end, &pending] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      pending.fetch_sub(1, std::memory_order_release);
    });
  }
  pool.wait_idle();
}

}  // namespace wtp::util
