// Fixed-footprint latency histogram for the serving engine's per-stage
// timings.  A full sample buffer would grow without bound on a long-lived
// stream; power-of-two buckets give O(1) memory and record cost with a
// bounded relative quantile error (linear interpolation inside a bucket).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace wtp::util {

/// Histogram of non-negative values (nanoseconds by convention).  Bucket b
/// counts values in [2^b, 2^(b+1)); bucket 0 additionally holds [0, 2).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Quantile estimate for q in [0, 1] (clamped); 0 when empty.  Exact at
  /// the extremes (returns min()/max()), interpolated inside buckets
  /// elsewhere.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Pools another histogram into this one (per-shard -> engine snapshot).
  void merge(const LatencyHistogram& other) noexcept;

  void reset() noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wtp::util
