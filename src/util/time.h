// Civil-time helpers for the proxy-log timestamp format
// ("2015-05-29 05:05:04") and week arithmetic used by the novelty analysis.
//
// Timestamps are Unix seconds (UTC).  We implement the civil-time conversion
// directly (Howard Hinnant's days-from-civil algorithm) so results do not
// depend on the host timezone database.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wtp::util {

using UnixSeconds = std::int64_t;

inline constexpr UnixSeconds kSecondsPerMinute = 60;
inline constexpr UnixSeconds kSecondsPerHour = 3600;
inline constexpr UnixSeconds kSecondsPerDay = 86400;
inline constexpr UnixSeconds kSecondsPerWeek = 7 * kSecondsPerDay;

/// Broken-down UTC time.
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1-12
  int day = 1;     ///< 1-31
  int hour = 0;    ///< 0-23
  int minute = 0;  ///< 0-59
  int second = 0;  ///< 0-59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
[[nodiscard]] std::int64_t days_from_civil(int year, int month, int day) noexcept;

[[nodiscard]] UnixSeconds to_unix(const CivilTime& civil) noexcept;
[[nodiscard]] CivilTime to_civil(UnixSeconds ts) noexcept;

/// Day of week, 0 = Monday .. 6 = Sunday.
[[nodiscard]] int day_of_week(UnixSeconds ts) noexcept;

/// Hour of day 0-23 and fractional hour (e.g. 13.5 = 13:30) in UTC.
[[nodiscard]] int hour_of_day(UnixSeconds ts) noexcept;
[[nodiscard]] double fractional_hour(UnixSeconds ts) noexcept;

/// Formats "YYYY-MM-DD HH:MM:SS" (the proxy-log timestamp format).
[[nodiscard]] std::string format_timestamp(UnixSeconds ts);

/// Parses "YYYY-MM-DD HH:MM:SS".  Throws std::runtime_error on bad input.
[[nodiscard]] UnixSeconds parse_timestamp(std::string_view text);

}  // namespace wtp::util
