// Fixed-width text table rendering for the benchmark binaries, which print
// the same rows the paper's tables report.
#pragma once

#include <string>
#include <vector>

namespace wtp::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row (optional).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; rows may be ragged (short rows are padded).
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment, a rule under the header, and a leading
  /// title line when `title` is non-empty.
  [[nodiscard]] std::string render(const std::string& title = {}) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wtp::util
