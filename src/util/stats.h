// Descriptive statistics used across evaluation code: means/variances for the
// novelty figures, quantiles and box-plot summaries for the timing figures.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wtp::util {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples.  Used when aggregating per-user ratios across 25 users.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance; 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Pools another accumulator into this one (Chan et al. parallel merge).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Quantile with linear interpolation between order statistics (type-7, the
/// numpy default).  q must be in [0,1]; xs need not be sorted.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Five-number summary used to print the Fig. 4 box-and-whiskers data.
struct BoxPlot {
  double whisker_low = 0.0;   ///< smallest sample >= q1 - 1.5*IQR
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_high = 0.0;  ///< largest sample <= q3 + 1.5*IQR
  std::size_t outliers = 0;   ///< samples beyond the whiskers
};

[[nodiscard]] BoxPlot box_plot(std::span<const double> xs);

/// Least-squares slope/intercept/R^2 for the Fig. 5 linearity check.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

}  // namespace wtp::util
