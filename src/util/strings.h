// Small string helpers shared by log parsing and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wtp::util {

/// Splits on a single delimiter; empty fields are preserved ("a,,b" -> 3).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view separator);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Fixed-precision formatting ("%.1f" style) without iostream state leakage.
[[nodiscard]] std::string format_double(double value, int decimals);

/// Escapes text for embedding inside a JSON string literal: double quotes,
/// backslashes, \n \r \t, and remaining control characters (as \u00XX).
/// Every user-controlled string (device/user ids, metric labels) must pass
/// through here before being spliced into JSON output.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace wtp::util
