#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace wtp::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace wtp::util
