#include "util/time.h"

#include <cstdio>
#include <stdexcept>

namespace wtp::util {

std::int64_t days_from_civil(int year, int month, int day) noexcept {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const auto yoe = static_cast<unsigned>(year - era * 400);             // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(day) - 1;                  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

namespace {

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t z, int& year, int& month, int& day) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);                      // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;    // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);                  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                       // [0, 11]
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  year = static_cast<int>(y + (month <= 2));
}

}  // namespace

UnixSeconds to_unix(const CivilTime& civil) noexcept {
  return days_from_civil(civil.year, civil.month, civil.day) * kSecondsPerDay +
         civil.hour * kSecondsPerHour + civil.minute * kSecondsPerMinute +
         civil.second;
}

CivilTime to_civil(UnixSeconds ts) noexcept {
  std::int64_t days = ts / kSecondsPerDay;
  std::int64_t rem = ts % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime civil;
  civil_from_days(days, civil.year, civil.month, civil.day);
  civil.hour = static_cast<int>(rem / kSecondsPerHour);
  civil.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  civil.second = static_cast<int>(rem % kSecondsPerMinute);
  return civil;
}

int day_of_week(UnixSeconds ts) noexcept {
  std::int64_t days = ts / kSecondsPerDay;
  if (ts % kSecondsPerDay < 0) --days;
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  return static_cast<int>(((days + 3) % 7 + 7) % 7);
}

int hour_of_day(UnixSeconds ts) noexcept { return to_civil(ts).hour; }

double fractional_hour(UnixSeconds ts) noexcept {
  std::int64_t rem = ts % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<double>(rem) / kSecondsPerHour;
}

std::string format_timestamp(UnixSeconds ts) {
  const CivilTime c = to_civil(ts);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buffer;
}

UnixSeconds parse_timestamp(std::string_view text) {
  CivilTime c;
  char buffer[32];
  if (text.size() >= sizeof buffer) {
    throw std::runtime_error{"parse_timestamp: input too long"};
  }
  text.copy(buffer, text.size());
  buffer[text.size()] = '\0';
  if (std::sscanf(buffer, "%d-%d-%d %d:%d:%d", &c.year, &c.month, &c.day,
                  &c.hour, &c.minute, &c.second) != 6) {
    throw std::runtime_error{"parse_timestamp: expected YYYY-MM-DD HH:MM:SS, got '" +
                             std::string{text} + "'"};
  }
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.hour < 0 ||
      c.hour > 23 || c.minute < 0 || c.minute > 59 || c.second < 0 ||
      c.second > 60) {
    throw std::runtime_error{"parse_timestamp: field out of range in '" +
                             std::string{text} + "'"};
  }
  return to_unix(c);
}

}  // namespace wtp::util
