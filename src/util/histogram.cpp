#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace wtp::util {

namespace {

std::size_t bucket_of(double value) noexcept {
  if (!(value >= 2.0)) return 0;  // also catches NaN and negatives
  const double clamped = std::min(value, 9.2e18);  // < 2^63
  const auto integral = static_cast<std::uint64_t>(clamped);
  return static_cast<std::size_t>(std::bit_width(integral)) - 1;
}

}  // namespace

void LatencyHistogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  value = std::max(value, 0.0);
  ++buckets_[bucket_of(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double LatencyHistogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // 0-based fractional order statistic, as in util::quantile (type 7).
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[b];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(cumulative + in_bucket)) {
      const double low = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double high = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double within =
          (rank - static_cast<double>(cumulative) + 0.5) / static_cast<double>(in_bucket);
      return std::clamp(low + within * (high - low), min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace wtp::util
