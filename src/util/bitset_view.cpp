#include "util/bitset_view.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/feature_matrix.h"

namespace wtp::util {

namespace {

std::uint64_t sc_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

void sc_and_popcount_rows(const std::uint64_t* query, const std::uint64_t* rows,
                          std::size_t w, std::size_t n_rows, std::uint64_t* out) {
  for (std::size_t r = 0; r < n_rows; ++r) {
    out[r] = sc_and_popcount(query, rows + r * w, w);
  }
}

void sc_and_popcount_block(const std::uint64_t* queries, std::size_t n_queries,
                           const std::uint64_t* rows, std::size_t n_rows,
                           std::size_t w, std::uint64_t* out) {
  for (std::size_t q = 0; q < n_queries; ++q) {
    sc_and_popcount_rows(queries + q * w, rows, w, n_rows, out + q * n_rows);
  }
}

// Stamp the fused dot + order-exact combine for the portable backend.
#define WTP_DOT_FN(name) sc_##name
#define WTP_DOT_ATTR
#define WTP_DOT_POPCOUNT(x) static_cast<std::uint64_t>(std::popcount(x))
#define WTP_DOT_ROW_TOTAL(q, r, w) sc_and_popcount((q), (r), (w))
#include "util/bitset_dot_body.inc"
#undef WTP_DOT_FN
#undef WTP_DOT_ATTR
#undef WTP_DOT_POPCOUNT
#undef WTP_DOT_ROW_TOTAL

constexpr BitsetDotOps kScalarOps{"scalar", &sc_and_popcount,
                                  &sc_and_popcount_rows, &sc_and_popcount_block,
                                  &sc_dot_rows};

}  // namespace

const BitsetDotOps& scalar_bitset_ops() noexcept { return kScalarOps; }

bool BitsetView::same_layout(const BitsetView& other) const noexcept {
  return cols == other.cols && words_per_row == other.words_per_row &&
         numeric_cols.size() == other.numeric_cols.size() &&
         std::equal(numeric_cols.begin(), numeric_cols.end(),
                    other.numeric_cols.begin());
}

bool BitsetQuery::encode(const BitsetView& layout,
                         std::span<const std::uint32_t> indices,
                         std::span<const double> values) {
  words.assign(layout.words_per_row, 0);
  numeric.assign(layout.numeric_cols.size(), 0.0);
  const auto& ncols = layout.numeric_cols;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::uint32_t idx = indices[k];
    if (idx >= layout.cols) continue;  // oracle's bounds guard
    const double value = values[k];
    const auto it = std::lower_bound(ncols.begin(), ncols.end(), idx);
    if (it != ncols.end() && *it == idx) {
      if (!std::isfinite(value)) return false;
      numeric[static_cast<std::size_t>(it - ncols.begin())] = value;
    } else {
      if (value != 1.0) return false;
      words[idx >> 6] |= std::uint64_t{1} << (idx & 63U);
    }
  }
  return true;
}

bool BitsetQuery::encode(const BitsetView& layout, const SparseVector& query) {
  words.assign(layout.words_per_row, 0);
  numeric.assign(layout.numeric_cols.size(), 0.0);
  const auto& ncols = layout.numeric_cols;
  for (const auto& entry : query.entries()) {
    if (entry.index >= layout.cols) continue;
    const std::uint32_t idx = static_cast<std::uint32_t>(entry.index);
    const auto it = std::lower_bound(ncols.begin(), ncols.end(), idx);
    if (it != ncols.end() && *it == idx) {
      if (!std::isfinite(entry.value)) return false;
      numeric[static_cast<std::size_t>(it - ncols.begin())] = entry.value;
    } else {
      if (entry.value != 1.0) return false;
      words[idx >> 6] |= std::uint64_t{1} << (idx & 63U);
    }
  }
  return true;
}

std::optional<BitsetStorage> BitsetStorage::build(
    const CsrView& matrix, std::span<const std::uint32_t> numeric_cols) {
  const std::size_t cols = matrix.cols;
  if (cols == 0) return std::nullopt;
  const std::size_t words_per_row = (cols + 63) / 64;
  // Past ~16K columns the words block stops being a win for sparse rows.
  if (words_per_row > 256) return std::nullopt;

  // Per-column numeric marks: hinted, or auto-detected (a column is numeric
  // iff any stored value differs from exactly 1.0).
  std::vector<std::uint8_t> is_numeric(cols, 0);
  if (!numeric_cols.empty()) {
    for (const std::uint32_t c : numeric_cols) {
      if (c < cols) is_numeric[c] = 1;
    }
  } else {
    for (std::size_t k = 0; k < matrix.values.size(); ++k) {
      if (matrix.values[k] != 1.0) is_numeric[matrix.indices[k]] = 1;
    }
  }

  BitsetStorage storage;
  storage.cols_ = cols;
  storage.rows_ = matrix.rows();
  storage.words_per_row_ = words_per_row;
  for (std::uint32_t c = 0; c < cols; ++c) {
    if (is_numeric[c]) storage.numeric_cols_.push_back(c);
  }
  if (storage.numeric_cols_.size() > kMaxNumericColumns) return std::nullopt;

  // Column -> numeric slot map for the fill pass.
  std::vector<std::int32_t> slot(cols, -1);
  for (std::size_t k = 0; k < storage.numeric_cols_.size(); ++k) {
    slot[storage.numeric_cols_[k]] = static_cast<std::int32_t>(k);
  }

  const std::size_t k_count = storage.numeric_cols_.size();
  storage.words_.assign(storage.rows_ * words_per_row, 0);
  storage.numeric_values_.assign(storage.rows_ * k_count, 0.0);
  for (std::size_t r = 0; r < storage.rows_; ++r) {
    std::uint64_t* row_words = storage.words_.data() + r * words_per_row;
    double* row_numeric = storage.numeric_values_.data() + r * k_count;
    const auto idx = matrix.row_indices(r);
    const auto val = matrix.row_values(r);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const std::uint32_t c = idx[k];
      const std::int32_t s = slot[c];
      if (s >= 0) {
        if (!std::isfinite(val[k])) return std::nullopt;
        row_numeric[s] = val[k];
      } else {
        if (val[k] != 1.0) return std::nullopt;  // hinted layout violated
        row_words[c >> 6] |= std::uint64_t{1} << (c & 63U);
      }
    }
  }
  return storage;
}

void bitset_dot_rows(const BitsetView& matrix, const BitsetQuery& query,
                     std::span<double> out, const BitsetDotOps& ops) {
  if (matrix.row_count == 0) return;
  ops.dot_rows(matrix, query.words.data(), query.numeric.data(), out.data());
}

void bitset_dot_rows(const BitsetView& matrix, std::size_t i, std::span<double> out,
                     const BitsetDotOps& ops) {
  if (matrix.row_count == 0) return;
  ops.dot_rows(matrix, matrix.row_words(i), matrix.row_numeric(i), out.data());
}

void BitsetQueryBlock::encode(const BitsetView& layout, const CsrView& queries,
                              const BitsetView* queries_bitset) {
  count_ = queries.rows();
  words_per_row_ = layout.words_per_row;
  numeric_count_ = layout.numeric_cols.size();
  if (queries_bitset != nullptr && queries_bitset->same_layout(layout)) {
    // Same layout: the queries' own bitset rows ARE their encodings.
    words_ = queries_bitset->words;
    numeric_ = queries_bitset->numeric_values;
    all_ok_ = true;
    ok_.clear();
    return;
  }
  owned_words_.assign(count_ * words_per_row_, 0);
  owned_numeric_.assign(count_ * numeric_count_, 0.0);
  ok_.assign(count_, 0);
  all_ok_ = true;
  for (std::size_t q = 0; q < count_; ++q) {
    if (row_scratch_.encode(layout, queries.row_indices(q), queries.row_values(q))) {
      ok_[q] = 1;
      std::copy(row_scratch_.words.begin(), row_scratch_.words.end(),
                owned_words_.begin() + q * words_per_row_);
      std::copy(row_scratch_.numeric.begin(), row_scratch_.numeric.end(),
                owned_numeric_.begin() + q * numeric_count_);
    } else {
      all_ok_ = false;
    }
  }
  words_ = owned_words_;
  numeric_ = owned_numeric_;
}

void bitset_dot_block(const BitsetView& matrix, const BitsetQueryBlock& queries,
                      std::span<double> out, const BitsetDotOps& ops) {
  const std::size_t n = matrix.row_count;
  const std::size_t nq = queries.count();
  if (n == 0 || nq == 0) return;
  for (std::size_t q = 0; q < nq; ++q) {
    if (!queries.ok(q)) continue;
    ops.dot_rows(matrix, queries.query_words(q), queries.query_numeric(q),
                 out.data() + q * n);
  }
}

}  // namespace wtp::util
