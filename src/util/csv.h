// Minimal CSV reading/writing with quoting support.  Used for persisting
// experiment outputs and for the proxy-log on-disk format.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wtp::util {

/// Escapes a field per RFC 4180 (quotes fields containing , " or newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Formats one CSV row (no trailing newline).
[[nodiscard]] std::string csv_format_row(const std::vector<std::string>& fields);

/// Parses one CSV row, honouring quoted fields with embedded commas/quotes.
/// Throws std::runtime_error on unterminated quotes.
[[nodiscard]] std::vector<std::string> csv_parse_row(std::string_view line);

/// Streaming CSV writer bound to an ostream owned by the caller.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_{out} {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Streaming CSV reader bound to an istream owned by the caller.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_{in} {}

  /// Reads the next row into `fields`; returns false at end of stream.
  /// Blank lines are skipped.
  bool read_row(std::vector<std::string>& fields);

 private:
  std::istream& in_;
};

}  // namespace wtp::util
