// Monotonic wall-clock stopwatch for the performance experiments (Figs. 4-5).
#pragma once

#include <chrono>

namespace wtp::util {

/// Thin wrapper over steady_clock with microsecond helpers.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_{clock::now()} {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_micros() const noexcept {
    return elapsed_seconds() * 1e6;
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace wtp::util
