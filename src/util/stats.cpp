#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wtp::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  RunningStats stats;
  for (const double x : xs) stats.add(x);
  return stats.mean();
}

double variance(std::span<const double> xs) noexcept {
  RunningStats stats;
  for (const double x : xs) stats.add(x);
  return stats.variance();
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument{"quantile: empty input"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile: q outside [0,1]"};
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxPlot box_plot(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"box_plot: empty input"};
  BoxPlot box;
  box.q1 = quantile(xs, 0.25);
  box.median = quantile(xs, 0.5);
  box.q3 = quantile(xs, 0.75);
  const double iqr = box.q3 - box.q1;
  const double fence_low = box.q1 - 1.5 * iqr;
  const double fence_high = box.q3 + 1.5 * iqr;
  box.whisker_low = box.q3;
  box.whisker_high = box.q1;
  for (const double x : xs) {
    if (x < fence_low || x > fence_high) {
      ++box.outliers;
      continue;
    }
    box.whisker_low = std::min(box.whisker_low, x);
    box.whisker_high = std::max(box.whisker_high, x);
  }
  return box;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument{"linear_fit: need two equal-length samples"};
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace wtp::util
