// FeatureMatrix: immutable CSR batch of sparse feature rows — the canonical
// data plane shared by training (svm/), the one-class alternatives
// (oneclass/), the grid searches (core/) and online scoring (serve/).
//
// Layout is classic compressed-sparse-row: one contiguous `indices` array,
// one contiguous `values` array, and `row_offsets` (length rows+1) slicing
// both per row.  Per-row squared Euclidean norms are computed once at build
// time so every RBF-style consumer shares them instead of recomputing.
// Rows keep SparseVector's invariants (sorted indices, no duplicates, no
// explicit zeros), which makes row-wise dot products bit-identical to
// SparseVector::dot's merge join.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/sparse_vector.h"

namespace wtp::util {

class FeatureMatrix {
 public:
  /// Zero-row, zero-column matrix.
  FeatureMatrix() = default;

  /// Builds from normalized sparse rows.  `cols` fixes the column count;
  /// when 0 it is deduced as max index + 1 over all rows.  Throws
  /// std::invalid_argument when a row index exceeds an explicit `cols`.
  [[nodiscard]] static FeatureMatrix from_rows(
      std::span<const SparseVector> rows, std::size_t cols = 0);

  [[nodiscard]] std::size_t rows() const noexcept {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows() == 0; }

  [[nodiscard]] std::span<const std::uint32_t> row_indices(std::size_t i) const noexcept {
    return {indices_.data() + row_offsets_[i], row_offsets_[i + 1] - row_offsets_[i]};
  }
  [[nodiscard]] std::span<const double> row_values(std::size_t i) const noexcept {
    return {values_.data() + row_offsets_[i], row_offsets_[i + 1] - row_offsets_[i]};
  }
  [[nodiscard]] std::size_t row_nnz(std::size_t i) const noexcept {
    return row_offsets_[i + 1] - row_offsets_[i];
  }

  /// Cached ||row_i||^2.
  [[nodiscard]] double sq_norm(std::size_t i) const noexcept { return sq_norms_[i]; }
  [[nodiscard]] std::span<const double> sq_norms() const noexcept { return sq_norms_; }

  /// Materializes row i as a SparseVector (persistence, tests).
  [[nodiscard]] SparseVector row_vector(std::size_t i) const;

  /// Writes row i densely into `out` (zero-filled first).  `out` must hold
  /// at least cols() elements; throws std::invalid_argument otherwise.
  /// Writing into a caller-reused buffer replaces the per-row allocation of
  /// SparseVector::to_dense in hot loops.
  void copy_row_dense(std::size_t i, std::span<double> out) const;

  /// Dot product of every row with a query vector, written to out[0..rows).
  /// The query is scattered into a dense scratch once, then each row streams
  /// its own entries — bit-identical to SparseVector::dot per row (adding
  /// the zero products of unmatched indices cannot change an IEEE sum).
  /// Query indices beyond cols() cannot match any row and are skipped.
  void dot_all(const SparseVector& query, std::span<double> out) const;
  void dot_all(std::span<const std::uint32_t> query_indices,
               std::span<const double> query_values, std::span<double> out) const;
  /// Row `i` of this matrix as the query.
  void dot_all(std::size_t i, std::span<double> out) const {
    dot_all(row_indices(i), row_values(i), out);
  }

  friend bool operator==(const FeatureMatrix&, const FeatureMatrix&) = default;

 private:
  friend class FeatureMatrixBuilder;

  std::size_t cols_ = 0;
  std::vector<std::uint32_t> indices_;
  std::vector<double> values_;
  std::vector<std::size_t> row_offsets_{0};
  std::vector<double> sq_norms_;
};

/// Incremental CSR builder for producers that stream (index, value) entries
/// row by row (e.g. straight off WindowAggregator output) without a
/// SparseVector detour.  Each row is normalized exactly like SparseVector:
/// entries sorted by index, duplicates summed, zero results dropped.
class FeatureMatrixBuilder {
 public:
  void add(std::size_t index, double value);
  /// Seals the current row (empty rows are legal and kept).
  void finish_row();
  /// Appends an already-normalized row.
  void add_row(const SparseVector& row);
  /// Appends row `row` of `src` directly from its CSR storage, reusing the
  /// cached squared norm.  Avoids the SparseVector round-trip (two heap
  /// allocations per row) when extracting a row subset — e.g. the support
  /// vectors of every grid-search cell.
  void add_row(const FeatureMatrix& src, std::size_t row);

  /// Emits the matrix and resets the builder.  Pending un-finished entries
  /// are sealed as a final row first.  `cols` as in FeatureMatrix::from_rows.
  [[nodiscard]] FeatureMatrix build(std::size_t cols = 0);

 private:
  FeatureMatrix matrix_;
  std::vector<SparseVector::Entry> pending_;
};

}  // namespace wtp::util
