// FeatureMatrix: immutable CSR batch of sparse feature rows — the canonical
// data plane shared by training (svm/), the one-class alternatives
// (oneclass/), the grid searches (core/) and online scoring (serve/).
//
// Layout is classic compressed-sparse-row: one contiguous `indices` array,
// one contiguous `values` array, and `row_offsets` (length rows+1) slicing
// both per row.  Per-row squared Euclidean norms are computed once at build
// time so every RBF-style consumer shares them instead of recomputing.
// Rows keep SparseVector's invariants (sorted indices, no duplicates, no
// explicit zeros), which makes row-wise dot products bit-identical to
// SparseVector::dot's merge join.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/bitset_view.h"
#include "util/sparse_vector.h"

namespace wtp::util {

/// Non-owning CSR view: the storage contract of FeatureMatrix (sorted
/// per-row indices, cached squared norms) over memory owned elsewhere — a
/// FeatureMatrix, or a memory-mapped profile file (svm/model_io blob path).
/// Copyable/trivial; row accessors mirror FeatureMatrix exactly, and
/// dot_all shares the same implementation so kernel rows computed through a
/// view are bit-identical to the owning path.
struct CsrView {
  std::size_t cols = 0;
  std::span<const std::uint32_t> indices;
  std::span<const double> values;
  std::span<const std::size_t> row_offsets;  ///< length rows+1 (or empty)
  std::span<const double> sq_norms;          ///< length rows

  [[nodiscard]] std::size_t rows() const noexcept {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows() == 0; }
  [[nodiscard]] std::span<const std::uint32_t> row_indices(std::size_t i) const noexcept {
    return indices.subspan(row_offsets[i], row_offsets[i + 1] - row_offsets[i]);
  }
  [[nodiscard]] std::span<const double> row_values(std::size_t i) const noexcept {
    return values.subspan(row_offsets[i], row_offsets[i + 1] - row_offsets[i]);
  }
  [[nodiscard]] double sq_norm(std::size_t i) const noexcept { return sq_norms[i]; }

  /// View of rows [begin, begin + count).  Row offsets stay absolute into
  /// the shared indices/values spans, so row accessors and dot_all work
  /// unchanged on the slice.
  [[nodiscard]] CsrView rows_slice(std::size_t begin, std::size_t count) const noexcept {
    return CsrView{cols, indices, values, row_offsets.subspan(begin, count + 1),
                   sq_norms.subspan(begin, count)};
  }

  /// Dot product of every row with a sparse query, written to out[0..rows).
  /// Identical implementation (and therefore identical IEEE sums) to
  /// FeatureMatrix::dot_all.
  void dot_all(std::span<const std::uint32_t> query_indices,
               std::span<const double> query_values, std::span<double> out) const;
  void dot_all(const SparseVector& query, std::span<double> out) const;
};

class FeatureMatrix {
 public:
  /// Zero-row, zero-column matrix.
  FeatureMatrix() = default;

  /// Builds from normalized sparse rows.  `cols` fixes the column count;
  /// when 0 it is deduced as max index + 1 over all rows.  Throws
  /// std::invalid_argument when a row index exceeds an explicit `cols`.
  [[nodiscard]] static FeatureMatrix from_rows(
      std::span<const SparseVector> rows, std::size_t cols = 0);

  [[nodiscard]] std::size_t rows() const noexcept {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows() == 0; }

  [[nodiscard]] std::span<const std::uint32_t> row_indices(std::size_t i) const noexcept {
    return {indices_.data() + row_offsets_[i], row_offsets_[i + 1] - row_offsets_[i]};
  }
  [[nodiscard]] std::span<const double> row_values(std::size_t i) const noexcept {
    return {values_.data() + row_offsets_[i], row_offsets_[i + 1] - row_offsets_[i]};
  }
  [[nodiscard]] std::size_t row_nnz(std::size_t i) const noexcept {
    return row_offsets_[i + 1] - row_offsets_[i];
  }

  /// Cached ||row_i||^2.
  [[nodiscard]] double sq_norm(std::size_t i) const noexcept { return sq_norms_[i]; }
  [[nodiscard]] std::span<const double> sq_norms() const noexcept { return sq_norms_; }

  /// Materializes row i as a SparseVector (persistence, tests).
  [[nodiscard]] SparseVector row_vector(std::size_t i) const;

  /// Writes row i densely into `out` (zero-filled first).  `out` must hold
  /// at least cols() elements; throws std::invalid_argument otherwise.
  /// Writing into a caller-reused buffer replaces the per-row allocation of
  /// SparseVector::to_dense in hot loops.
  void copy_row_dense(std::size_t i, std::span<double> out) const;

  /// Dot product of every row with a query vector, written to out[0..rows).
  /// The query is scattered into a dense scratch once, then each row streams
  /// its own entries — bit-identical to SparseVector::dot per row (adding
  /// the zero products of unmatched indices cannot change an IEEE sum).
  /// Query indices beyond cols() cannot match any row and are skipped.
  void dot_all(const SparseVector& query, std::span<double> out) const;
  void dot_all(std::span<const std::uint32_t> query_indices,
               std::span<const double> query_values, std::span<double> out) const;
  /// Row `i` of this matrix as the query.
  void dot_all(std::size_t i, std::span<double> out) const {
    dot_all(row_indices(i), row_values(i), out);
  }

  /// Non-owning view of this matrix's storage (valid while the matrix is).
  [[nodiscard]] CsrView view() const noexcept {
    return CsrView{cols_, indices_, values_, row_offsets_, sq_norms_};
  }

  /// Bitset companion of the CSR rows (DESIGN §11), built lazily on first
  /// use with an auto-detected layout and cached for the matrix's lifetime.
  /// Returns nullptr when the matrix is not representable (see
  /// BitsetStorage::build) — consumers then stay on the CSR path.
  /// Thread-safe; the pointer stays valid while the matrix is alive.
  [[nodiscard]] const BitsetStorage* bitset() const;

  /// Builds (or rebuilds) the bitset with an explicit numeric-column layout
  /// — e.g. schema-derived, so matrices across users share one layout and
  /// encoded queries can be reused.  Call before sharing the matrix across
  /// scoring threads; a later bitset() returns this layout.
  void ensure_bitset(std::span<const std::uint32_t> numeric_cols);

  FeatureMatrix(const FeatureMatrix& other);
  FeatureMatrix(FeatureMatrix&& other) noexcept;
  FeatureMatrix& operator=(const FeatureMatrix& other);
  FeatureMatrix& operator=(FeatureMatrix&& other) noexcept;
  ~FeatureMatrix() = default;

  /// Equality is over the CSR contents only (the bitset is derived state).
  friend bool operator==(const FeatureMatrix& a, const FeatureMatrix& b) {
    return a.cols_ == b.cols_ && a.indices_ == b.indices_ &&
           a.values_ == b.values_ && a.row_offsets_ == b.row_offsets_ &&
           a.sq_norms_ == b.sq_norms_;
  }

 private:
  friend class FeatureMatrixBuilder;

  std::size_t cols_ = 0;
  std::vector<std::uint32_t> indices_;
  std::vector<double> values_;
  std::vector<std::size_t> row_offsets_{0};
  std::vector<double> sq_norms_;

  struct BitsetSlot {
    std::optional<BitsetStorage> storage;
  };
  /// Set-once cache guarded by bitset_mutex_ (copies share the immutable
  /// slot; the mutex itself is never copied).
  mutable std::mutex bitset_mutex_;
  mutable std::shared_ptr<const BitsetSlot> bitset_;
};

/// Incremental CSR builder for producers that stream (index, value) entries
/// row by row (e.g. straight off WindowAggregator output) without a
/// SparseVector detour.  Each row is normalized exactly like SparseVector:
/// entries sorted by index, duplicates summed, zero results dropped.
class FeatureMatrixBuilder {
 public:
  void add(std::size_t index, double value);
  /// Seals the current row (empty rows are legal and kept).
  void finish_row();
  /// Appends an already-normalized row.
  void add_row(const SparseVector& row);
  /// Appends row `row` of `src` directly from its CSR storage, reusing the
  /// cached squared norm.  Avoids the SparseVector round-trip (two heap
  /// allocations per row) when extracting a row subset — e.g. the support
  /// vectors of every grid-search cell.
  void add_row(const FeatureMatrix& src, std::size_t row);

  /// Emits the matrix and resets the builder.  Pending un-finished entries
  /// are sealed as a final row first.  `cols` as in FeatureMatrix::from_rows.
  [[nodiscard]] FeatureMatrix build(std::size_t cols = 0);

 private:
  FeatureMatrix matrix_;
  std::vector<SparseVector::Entry> pending_;
};

}  // namespace wtp::util
